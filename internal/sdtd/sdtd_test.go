package sdtd

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/automata"
	"repro/internal/dtd"
	"repro/internal/regex"
	"repro/internal/xmlmodel"
)

// buildD4 constructs the paper's specialized DTD D4 (Example 3.4): the
// tight view s-DTD for query Q2 over the department DTD D1. publication¹ is
// the journal-only specialization; professors and grad students must carry
// two publication¹ children among arbitrary other publications.
func buildD4() *SDTD {
	s := New(regex.N("withJournals"))
	s.Declare(regex.N("withJournals"), dtd.M(regex.MustParse("professor*, gradStudent*")))
	s.Declare(regex.N("professor"), dtd.M(regex.MustParse(
		"firstName, lastName, publication*, publication^1, publication*, publication^1, publication*, teaches")))
	s.Declare(regex.N("gradStudent"), dtd.M(regex.MustParse(
		"firstName, lastName, publication*, publication^1, publication*, publication^1, publication*")))
	s.Declare(regex.N("publication"), dtd.M(regex.MustParse("title, author+, (journal|conference)")))
	s.Declare(regex.T("publication", 1), dtd.M(regex.MustParse("title, author+, journal")))
	for _, pc := range []string{"firstName", "lastName", "title", "author", "journal", "conference", "teaches"} {
		s.Declare(regex.N(pc), dtd.PC())
	}
	return s
}

func pub(venue string) *xmlmodel.Element {
	return xmlmodel.NewElement("publication",
		xmlmodel.NewText("title", "t"),
		xmlmodel.NewText("author", "a"),
		xmlmodel.NewText(venue, "v"))
}

func prof(venues ...string) *xmlmodel.Element {
	kids := []*xmlmodel.Element{
		xmlmodel.NewText("firstName", "f"),
		xmlmodel.NewText("lastName", "l"),
	}
	for _, v := range venues {
		kids = append(kids, pub(v))
	}
	kids = append(kids, xmlmodel.NewText("teaches", "c"))
	return xmlmodel.NewElement("professor", kids...)
}

func TestD4Satisfaction(t *testing.T) {
	s := buildD4()
	if errs := s.Check(); len(errs) != 0 {
		t.Fatalf("Check: %v", errs)
	}
	cases := []struct {
		name   string
		venues []string
		want   bool
	}{
		{"two journals", []string{"journal", "journal"}, true},
		{"three journals", []string{"journal", "journal", "journal"}, true},
		{"two journals plus conference between", []string{"journal", "conference", "journal"}, true},
		{"conference first", []string{"conference", "journal", "journal"}, true},
		{"one journal only", []string{"journal"}, false},
		{"one journal one conference", []string{"journal", "conference"}, false},
		{"conferences only", []string{"conference", "conference"}, false},
		{"no publications", nil, false},
	}
	for _, c := range cases {
		doc := &xmlmodel.Document{Root: xmlmodel.NewElement("withJournals", prof(c.venues...))}
		err := s.Satisfies(doc)
		if (err == nil) != c.want {
			t.Errorf("%s: Satisfies = %v, want ok=%v", c.name, err, c.want)
		}
	}
}

// TestWeakVsStrict shows why the literal Definition 3.10 is too weak for
// the paper's tightness claims: under the image-based reading, a professor
// with two conference papers satisfies D4 (any publication child matches
// the image of publication¹), while the strict tag-consistent semantics
// rejects it.
func TestWeakVsStrict(t *testing.T) {
	s := buildD4()
	doc := &xmlmodel.Document{Root: xmlmodel.NewElement("withJournals",
		prof("conference", "conference"))}
	if err := s.SatisfiesWeak(doc); err != nil {
		t.Errorf("weak semantics should accept two conference papers: %v", err)
	}
	if err := s.Satisfies(doc); err == nil {
		t.Error("strict semantics must reject: no two journal publications")
	}
	// On a genuinely conforming document both agree.
	good := &xmlmodel.Document{Root: xmlmodel.NewElement("withJournals",
		prof("journal", "journal"))}
	if err := s.SatisfiesWeak(good); err != nil {
		t.Errorf("weak: %v", err)
	}
	if err := s.Satisfies(good); err != nil {
		t.Errorf("strict: %v", err)
	}
}

func TestSatisfiesRootChecks(t *testing.T) {
	s := buildD4()
	if err := s.Satisfies(&xmlmodel.Document{Root: xmlmodel.NewElement("department")}); err == nil {
		t.Error("wrong root name must fail")
	}
	if err := s.Satisfies(&xmlmodel.Document{}); err == nil {
		t.Error("empty document must fail")
	}
	// Empty view (no professors or students) is allowed by D4's root type.
	if err := s.Satisfies(&xmlmodel.Document{Root: xmlmodel.NewElement("withJournals")}); err != nil {
		t.Errorf("empty view: %v", err)
	}
}

func TestSatisfiesElementAs(t *testing.T) {
	s := buildD4()
	j := pub("journal")
	c := pub("conference")
	if !s.SatisfiesElementAs(j, regex.T("publication", 1)) {
		t.Error("journal publication must satisfy publication^1")
	}
	if s.SatisfiesElementAs(c, regex.T("publication", 1)) {
		t.Error("conference publication must not satisfy publication^1")
	}
	if !s.SatisfiesElementAs(c, regex.N("publication")) {
		t.Error("conference publication must satisfy publication^0")
	}
	if !s.SatisfiesElement(c) || !s.SatisfiesElement(j) {
		t.Error("both satisfy some specialization")
	}
}

// TestMergeD4 reproduces Example 4.3: merging D4 yields D10, whose
// professor definition is language-equivalent to "at least two
// publications" and which signals non-tightness for publication.
func TestMergeD4(t *testing.T) {
	s := buildD4()
	plain, events, err := s.Merge()
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	wantProf := regex.MustParse("firstName, lastName, publication, publication, publication*, teaches")
	if !automata.Equivalent(plain.Types["professor"].Model, wantProf) {
		t.Errorf("merged professor = %s, want ≡ %s", plain.Types["professor"].Model, wantProf)
	}
	wantPub := regex.MustParse("(title, author+, (journal|conference)) | (title, author+, journal)")
	if !automata.Equivalent(plain.Types["publication"].Model, wantPub) {
		t.Errorf("merged publication = %s", plain.Types["publication"].Model)
	}
	var pubEvent *MergeEvent
	for i := range events {
		if events[i].Base == "publication" {
			pubEvent = &events[i]
		}
	}
	if pubEvent == nil {
		t.Fatal("merge of publication specializations must be signalled")
	}
	if !pubEvent.Distinct {
		t.Error("publication⁰ and publication¹ differ; the merge loses information and must say so")
	}
	if !strings.Contains(pubEvent.String(), "non-tightness") {
		t.Errorf("event rendering: %s", pubEvent)
	}
	if errs := plain.Check(); len(errs) != 0 {
		t.Errorf("merged DTD inconsistent: %v", errs)
	}
}

func TestMergeSoundness(t *testing.T) {
	// Any document satisfying the s-DTD must satisfy the merged DTD.
	s := buildD4()
	plain, _, err := s.Merge()
	if err != nil {
		t.Fatal(err)
	}
	doc := &xmlmodel.Document{Root: xmlmodel.NewElement("withJournals",
		prof("journal", "conference", "journal"))}
	if err := s.Satisfies(doc); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if err := plain.Validate(doc); err != nil {
		t.Errorf("Merge must be sound: %v", err)
	}
}

func TestMergePCDATAConflict(t *testing.T) {
	s := New(regex.N("r"))
	s.Declare(regex.N("r"), dtd.M(regex.MustParse("a")))
	s.Declare(regex.N("a"), dtd.PC())
	s.Declare(regex.T("a", 1), dtd.M(regex.MustParse("b")))
	s.Declare(regex.N("b"), dtd.PC())
	if _, _, err := s.Merge(); err == nil {
		t.Error("PCDATA/model conflict must be an error")
	}
}

func TestMergePCDATASpecializations(t *testing.T) {
	s := New(regex.N("r"))
	s.Declare(regex.N("r"), dtd.M(regex.MustParse("a, a^1")))
	s.Declare(regex.N("a"), dtd.PC())
	s.Declare(regex.T("a", 1), dtd.PC())
	plain, events, err := s.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Types["a"].PCDATA {
		t.Error("merged a must stay PCDATA")
	}
	if len(events) != 1 || events[0].Distinct {
		t.Errorf("events = %v", events)
	}
}

// TestNormalizeCollapsesFootnote8 reproduces footnote 8: a redundant
// publication² with the same type as publication¹ disappears.
func TestNormalizeCollapsesFootnote8(t *testing.T) {
	s := buildD4()
	// Introduce the redundant third specialization the tightening algorithm
	// would create, and reference it from gradStudent.
	s.Declare(regex.T("publication", 2), dtd.M(regex.MustParse("title, author+, journal")))
	s.Types[regex.N("gradStudent")] = dtd.M(regex.MustParse(
		"firstName, lastName, publication*, publication^1, publication*, publication^2, publication*"))
	n := s.Normalize()
	if got := len(n.Specializations("publication")); got != 2 {
		t.Fatalf("publication specializations after Normalize = %d, want 2\n%s", got, n)
	}
	gs := n.Types[regex.N("gradStudent")].Model.String()
	if strings.Contains(gs, "publication^2") {
		t.Errorf("gradStudent still references publication^2: %s", gs)
	}
	// Normalization must preserve satisfaction.
	for _, venues := range [][]string{{"journal", "journal"}, {"journal"}, {"conference", "journal", "journal"}} {
		doc := &xmlmodel.Document{Root: xmlmodel.NewElement("withJournals", prof(venues...))}
		before := s.Satisfies(doc) == nil
		after := n.Satisfies(doc) == nil
		if before != after {
			t.Errorf("Normalize changed satisfaction for %v: %v vs %v", venues, before, after)
		}
	}
}

func TestNormalizeKeepsDistinctTags(t *testing.T) {
	s := buildD4()
	n := s.Normalize()
	if got := len(n.Specializations("publication")); got != 2 {
		t.Errorf("distinct specializations must survive, got %d", got)
	}
}

func TestNormalizeRecursiveEquivalence(t *testing.T) {
	// a^0 and a^1 reference each other's classes; they are equivalent only
	// after identifying them — the fixpoint must keep them together.
	s := New(regex.N("r"))
	s.Declare(regex.N("r"), dtd.M(regex.MustParse("a | a^1")))
	s.Declare(regex.N("a"), dtd.M(regex.MustParse("a?")))
	s.Declare(regex.T("a", 1), dtd.M(regex.MustParse("a^1?")))
	n := s.Normalize()
	if got := len(n.Specializations("a")); got != 1 {
		t.Errorf("recursively equivalent tags should collapse, got %d\n%s", got, n)
	}
}

func TestFromDTD(t *testing.T) {
	d := dtd.New("r")
	d.Declare("r", dtd.M(regex.MustParse("a*")))
	d.Declare("a", dtd.PC())
	s := FromDTD(d)
	if s.Root != regex.N("r") || len(s.Types) != 2 {
		t.Errorf("FromDTD = %v", s)
	}
	doc := &xmlmodel.Document{Root: xmlmodel.NewElement("r", xmlmodel.NewText("a", "x"))}
	if err := s.Satisfies(doc); err != nil {
		t.Errorf("lifted s-DTD must accept what the DTD accepts: %v", err)
	}
}

func TestStringRendering(t *testing.T) {
	s := buildD4()
	out := s.String()
	if !strings.Contains(out, "<!ELEMENT publication^1 (title, author+, journal)>") {
		t.Errorf("rendering:\n%s", out)
	}
}

func TestCheckUndeclaredReference(t *testing.T) {
	s := New(regex.N("r"))
	s.Declare(regex.N("r"), dtd.M(regex.MustParse("a^3")))
	errs := s.Check()
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "a^3") {
		t.Errorf("Check = %v", errs)
	}
}

// TestQuickStrictImpliesWeak: the strict (tag-consistent) satisfaction is
// at least as demanding as the literal Definition 3.10 reading, on random
// documents over D4's names.
func TestQuickStrictImpliesWeak(t *testing.T) {
	s := buildD4()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var venues []string
		for i := 0; i < r.Intn(5); i++ {
			if r.Intn(2) == 0 {
				venues = append(venues, "journal")
			} else {
				venues = append(venues, "conference")
			}
		}
		kids := []*xmlmodel.Element{}
		for i := 0; i < r.Intn(3); i++ {
			if r.Intn(2) == 0 {
				kids = append(kids, prof(venues...))
			} else {
				gs := prof(venues...)
				gs.Name = "gradStudent"
				gs.Children = gs.Children[:len(gs.Children)-1] // drop teaches
				kids = append(kids, gs)
			}
		}
		doc := &xmlmodel.Document{Root: xmlmodel.NewElement("withJournals", kids...)}
		strict := s.Satisfies(doc) == nil
		weak := s.SatisfiesWeak(doc) == nil
		if strict && !weak {
			t.Logf("seed %d: strict holds but weak fails on %s", seed, xmlmodel.MarshalElement(doc.Root, -1))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	s := buildD4()
	back, err := Parse(s.String())
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, s)
	}
	if back.Root != s.Root || len(back.Types) != len(s.Types) {
		t.Fatalf("round trip changed shape")
	}
	for _, n := range s.Names() {
		if back.Types[n].String() != s.Types[n].String() {
			t.Errorf("type of %s changed: %s vs %s", n, s.Types[n], back.Types[n])
		}
	}
	// Satisfaction is preserved.
	doc := &xmlmodel.Document{Root: xmlmodel.NewElement("withJournals", prof("journal", "journal"))}
	if (s.Satisfies(doc) == nil) != (back.Satisfies(doc) == nil) {
		t.Error("round trip changed satisfaction")
	}
}

func TestParseErrorsSDTD(t *testing.T) {
	for _, bad := range []string{
		``,
		`<!DOCTYPE r [ <!ELEMENT r (a^1)> ]>`, // undeclared a^1
		`<!DOCTYPE r [ <!ELEMENT r (a)> <!ELEMENT r (b)> ]>`, // duplicate
		`<!DOCTYPE r [ <!WEIRD x> ]>`,                        // unknown decl
		`<!DOCTYPE r [ <!ELEMENT r (a,,b)> ]>`,               // bad model
		`<!DOCTYPE (a|b) [ <!ELEMENT a (#PCDATA)> ]>`,        // root not a name
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseTaggedRoot(t *testing.T) {
	s, err := Parse(`<!DOCTYPE v [
	  <!ELEMENT v (p^1*)>
	  <!ELEMENT p^1 (#PCDATA)>
	]>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Specializations("p")); got != 1 {
		t.Errorf("p specializations = %d", got)
	}
}
