// Package sdtd implements specialized DTDs (s-DTDs, Definition 3.8): DTDs
// whose element names carry specialization tags n^i, with types that are
// tagged regular expressions. s-DTDs are the device the paper introduces to
// recover structural tightness (Section 3.3): a single element name may
// have several type definitions — e.g. publication⁰ (any publication) and
// publication¹ (journal publications only) in Example 3.4 — so a view DTD
// can require "exactly two journal publications and any number of others",
// which no plain DTD can express.
//
// The package provides the image operation (Definition 3.9), s-DTD
// satisfaction (Definition 3.10, in both the paper's literal "weak" form
// and the tag-consistent "strict" form — see Satisfies for the
// distinction), the Merge algorithm that converts an s-DTD back to a plain
// DTD while signalling the tightness lost (Section 4.3), and a
// normalization pass that collapses redundant specializations (the
// publication² ≡ publication¹ phenomenon of footnote 8).
package sdtd

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/automata"
	"repro/internal/budget"
	"repro/internal/dtd"
	"repro/internal/regex"
	"repro/internal/xmlmodel"
)

// Name is a specialized element name; re-exported from regex.
type Name = regex.Name

// SDTD is a specialized DTD: a set of tagged type definitions plus the
// document type (the tagged name the root element must satisfy).
type SDTD struct {
	// Root is the document type. For inferred view DTDs it is the view
	// name with tag 0.
	Root Name
	// Types maps each tagged name to its type: PCDATA or a tagged regular
	// expression (over Names).
	Types map[Name]dtd.Type

	order []Name
}

// New returns an empty s-DTD with the given document type.
func New(root Name) *SDTD {
	return &SDTD{Root: root, Types: map[Name]dtd.Type{}}
}

// Declare adds or replaces a tagged type definition.
func (s *SDTD) Declare(n Name, t dtd.Type) {
	if _, exists := s.Types[n]; !exists {
		s.order = append(s.order, n)
	}
	s.Types[n] = t
}

// Names returns the declared tagged names in declaration order. When the
// order must be rebuilt (after deletions) it is recomputed with the
// document type first, then alphabetically.
func (s *SDTD) Names() []Name {
	if len(s.order) != len(s.Types) {
		s.order = s.order[:0]
		for n := range s.Types {
			s.order = append(s.order, n)
		}
		sort.Slice(s.order, func(i, j int) bool {
			a, b := s.order[i], s.order[j]
			if (a == s.Root) != (b == s.Root) {
				return a == s.Root
			}
			if a.Base != b.Base {
				return a.Base < b.Base
			}
			return a.Tag < b.Tag
		})
	}
	return append([]Name(nil), s.order...)
}

// Specializations returns the tags declared for a base name, sorted. This
// is the paper's spec(n) set.
func (s *SDTD) Specializations(base string) []int {
	var tags []int
	for n := range s.Types {
		if n.Base == base {
			tags = append(tags, n.Tag)
		}
	}
	sort.Ints(tags)
	return tags
}

// Clone returns a copy sharing the (immutable) expressions.
func (s *SDTD) Clone() *SDTD {
	c := New(s.Root)
	for _, n := range s.Names() {
		c.Declare(n, s.Types[n])
	}
	return c
}

// String serializes the s-DTD in the paper's ⟨name^tag : type⟩ style,
// rendered with DOCTYPE-like syntax so it remains machine-readable:
// tags are printed with a caret.
func (s *SDTD) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "<!DOCTYPE %s [\n", s.Root)
	for _, n := range s.Names() {
		fmt.Fprintf(&b, "  <!ELEMENT %s %s>\n", n, s.Types[n])
	}
	b.WriteString("]>")
	return b.String()
}

// Check verifies that every tagged name referenced in a type is declared.
func (s *SDTD) Check() []error {
	var errs []error
	if _, ok := s.Types[s.Root]; !ok {
		errs = append(errs, fmt.Errorf("sdtd: document type %s is not declared", s.Root))
	}
	for _, n := range s.Names() {
		t := s.Types[n]
		if t.PCDATA {
			continue
		}
		if t.Model == nil {
			errs = append(errs, fmt.Errorf("sdtd: %s has neither PCDATA nor a model", n))
			continue
		}
		for _, m := range regex.Names(t.Model) {
			if _, ok := s.Types[m]; !ok {
				errs = append(errs, fmt.Errorf("sdtd: %s references undeclared name %s", n, m))
			}
		}
	}
	return errs
}

// dfa returns the compiled automaton for n's content model, backed by the
// process-wide compiled-automata cache (concurrency-safe; shared across
// s-DTD values with the same models).
func (s *SDTD) dfa(n Name) *automata.DFA {
	return automata.Compiled(s.Types[n].Model)
}

// MergeEvent records one merge performed by Merge: several specializations
// of the same base name were collapsed into a single definition. Distinct
// reports whether the merged images were genuinely different languages — in
// that case information was lost and, as Section 4.3 says, "merging
// inadvertently introduces non-tightness", so the user must be informed.
type MergeEvent struct {
	Base     string
	Tags     []int
	Distinct bool
}

func (e MergeEvent) String() string {
	loss := "no information lost"
	if e.Distinct {
		loss = "non-tightness introduced"
	}
	return fmt.Sprintf("merged %s specializations %v (%s)", e.Base, e.Tags, loss)
}

// Merge converts the s-DTD to a plain DTD using the paper's Merge algorithm
// (Section 4.3): every type is replaced by its image, and images of the
// same base name are unioned. The returned events signal each collapsed
// name. Merging a PCDATA specialization with an element-content
// specialization is impossible in a plain DTD and yields an error.
func (s *SDTD) Merge() (*dtd.DTD, []MergeEvent, error) {
	return s.MergeBudget(nil)
}

// MergeBudget is Merge under a resource budget. Exhaustion degrades
// rather than errors: content-model reduction falls back to the syntactic
// simplification (language-preserving), and an image-equivalence check
// that cannot complete conservatively reports the merge as Distinct —
// claiming information *may* have been lost is sound, the reverse is not.
func (s *SDTD) MergeBudget(bud *budget.Budget) (*dtd.DTD, []MergeEvent, error) {
	out := dtd.New(s.Root.Base)
	var events []MergeEvent
	byBase := map[string][]Name{}
	var bases []string
	for _, n := range s.Names() {
		if _, seen := byBase[n.Base]; !seen {
			bases = append(bases, n.Base)
		}
		byBase[n.Base] = append(byBase[n.Base], n)
	}
	for _, base := range bases {
		specs := byBase[base]
		if len(specs) == 1 {
			t := s.Types[specs[0]]
			if t.PCDATA {
				out.Declare(base, dtd.PC())
			} else {
				out.Declare(base, dtd.M(automata.ReduceBudget(regex.Image(t.Model), bud)))
			}
			continue
		}
		pcdata := 0
		var images []regex.Expr
		var tags []int
		for _, n := range specs {
			tags = append(tags, n.Tag)
			t := s.Types[n]
			if t.PCDATA {
				pcdata++
				continue
			}
			images = append(images, regex.Image(t.Model))
		}
		if pcdata > 0 && len(images) > 0 {
			return nil, nil, fmt.Errorf("sdtd: cannot merge %s: PCDATA and element-content specializations coexist", base)
		}
		if pcdata > 0 {
			out.Declare(base, dtd.PC())
			events = append(events, MergeEvent{Base: base, Tags: tags, Distinct: false})
			continue
		}
		distinct := false
		for _, im := range images[1:] {
			eq, err := automata.EquivalentBudget(images[0], im, bud)
			if err != nil || !eq {
				distinct = true
				break
			}
		}
		out.Declare(base, dtd.M(automata.ReduceBudget(regex.Or(images...), bud)))
		events = append(events, MergeEvent{Base: base, Tags: tags, Distinct: distinct})
	}
	return out, events, nil
}

// Satisfies checks the document against the s-DTD under the tag-consistent
// ("strict") semantics: the root element must satisfy the document type,
// where an element e satisfies a tagged name n^i when
//
//   - name(e) = n, and
//   - if type(n^i) is PCDATA, e has character content;
//   - otherwise there is a parse of e's children against the *tagged*
//     regular expression type(n^i) assigning each child a tagged name it
//     recursively satisfies.
//
// Definition 3.10 as printed in the paper checks children only against the
// image of the chosen type, which would let any publication stand where
// Example 3.4's D4 requires a journal-only publication¹ — under that weak
// reading D4 would not be structurally tight. The strict semantics is the
// one under which the paper's tightness claims hold; the literal weak
// reading is available as SatisfiesWeak, and TestWeakVsStrict in this
// package demonstrates the difference on D4 itself.
func (s *SDTD) Satisfies(doc *xmlmodel.Document) error {
	if doc == nil || doc.Root == nil {
		return fmt.Errorf("sdtd: empty document")
	}
	if doc.Root.Name != s.Root.Base {
		return fmt.Errorf("sdtd: root element is %s, document type requires %s", doc.Root.Name, s.Root)
	}
	memo := map[memoKey]bool{}
	if !s.satisfiesStrict(doc.Root, s.Root, memo) {
		return fmt.Errorf("sdtd: root element does not satisfy %s", s.Root)
	}
	return nil
}

// SatisfiesElementAs reports whether the element satisfies the given tagged
// name under the strict semantics.
func (s *SDTD) SatisfiesElementAs(e *xmlmodel.Element, n Name) bool {
	return s.satisfiesStrict(e, n, map[memoKey]bool{})
}

// SatisfiesElement reports whether e satisfies some specialization of its
// name (the existential of Definition 3.10), strictly.
func (s *SDTD) SatisfiesElement(e *xmlmodel.Element) bool {
	memo := map[memoKey]bool{}
	for _, tag := range s.Specializations(e.Name) {
		if s.satisfiesStrict(e, Name{Base: e.Name, Tag: tag}, memo) {
			return true
		}
	}
	return false
}

type memoKey struct {
	e *xmlmodel.Element
	n Name
}

func (s *SDTD) satisfiesStrict(e *xmlmodel.Element, n Name, memo map[memoKey]bool) bool {
	if e.Name != n.Base {
		return false
	}
	t, declared := s.Types[n]
	if !declared {
		return false
	}
	key := memoKey{e, n}
	if v, ok := memo[key]; ok {
		return v
	}
	var ok bool
	switch {
	case t.PCDATA:
		ok = e.IsText
	case e.IsText:
		ok = false
	default:
		ok = s.parseChildren(e, n, memo)
	}
	memo[key] = ok
	return ok
}

// parseChildren runs the children of e through the DFA of type(n),
// branching on every tagged symbol whose base matches the child's name and
// whose specialization the child satisfies. The reachable-state set stays
// small (bounded by the DFA size), so this is O(children × states ×
// alphabet) plus the memoized child checks.
func (s *SDTD) parseChildren(e *xmlmodel.Element, n Name, memo map[memoKey]bool) bool {
	d := s.dfa(n)
	states := map[int]bool{d.Start: true}
	for _, child := range e.Children {
		if len(states) == 0 {
			return false
		}
		// Which tagged names could this child be labeled with?
		var feasible []int
		for ai, sym := range d.Alphabet {
			if sym.Base != child.Name {
				continue
			}
			if s.satisfiesStrict(child, sym, memo) {
				feasible = append(feasible, ai)
			}
		}
		next := map[int]bool{}
		for st := range states {
			for _, ai := range feasible {
				next[d.Trans[st][ai]] = true
			}
		}
		states = next
	}
	for st := range states {
		if d.Accept[st] {
			return true
		}
	}
	return false
}

// SatisfiesWeak checks the document under the literal Definition 3.10:
// each element (independently) needs some specialization i of its name
// such that the *images* of the children names match image(type(n^i)),
// with children checked recursively the same way. Tags impose no
// cross-level consistency under this reading.
func (s *SDTD) SatisfiesWeak(doc *xmlmodel.Document) error {
	if doc == nil || doc.Root == nil {
		return fmt.Errorf("sdtd: empty document")
	}
	if doc.Root.Name != s.Root.Base {
		return fmt.Errorf("sdtd: root element is %s, document type requires %s", doc.Root.Name, s.Root)
	}
	imageDFAs := map[Name]*automata.DFA{}
	var walk func(e *xmlmodel.Element) error
	walk = func(e *xmlmodel.Element) error {
		tags := s.Specializations(e.Name)
		if len(tags) == 0 {
			return fmt.Errorf("sdtd: element name %s has no specialization", e.Name)
		}
		ok := false
		for _, tag := range tags {
			n := Name{Base: e.Name, Tag: tag}
			t := s.Types[n]
			if t.PCDATA {
				if e.IsText {
					ok = true
					break
				}
				continue
			}
			if e.IsText {
				continue
			}
			d, cached := imageDFAs[n]
			if !cached {
				d = automata.FromExpr(regex.Image(t.Model))
				imageDFAs[n] = d
			}
			word := make([]regex.Name, len(e.Children))
			for i, k := range e.Children {
				word[i] = regex.N(k.Name)
			}
			if d.Match(word) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("sdtd: element %s satisfies no specialization (weak)", e.Name)
		}
		for _, k := range e.Children {
			if err := walk(k); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(doc.Root)
}

// FromDTD lifts a plain DTD to an s-DTD where every name has the single
// specialization 0. This is the starting point of the tightening algorithm.
func FromDTD(d *dtd.DTD) *SDTD {
	s := New(regex.N(d.Root))
	for _, n := range d.Names() {
		s.Declare(regex.N(n), d.Types[n])
	}
	return s
}
