package sdtd

import (
	"fmt"
	"strings"

	"repro/internal/dtd"
	"repro/internal/regex"
)

// Parse parses the textual form produced by SDTD.String: a DOCTYPE-like
// declaration whose element names and content models may carry ^tag
// specialization markers, e.g.
//
//	<!DOCTYPE withJournals [
//	  <!ELEMENT professor (firstName, publication^1, publication*)>
//	  <!ELEMENT publication^1 (title, journal)>
//	  ...
//	]>
//
// This makes s-DTDs a first-class exchange format: a stacked mediator can
// consume the specialized view DTD of a lower mediator, not only the
// merged plain DTD.
func Parse(input string) (*SDTD, error) {
	s := strings.TrimSpace(input)
	if !strings.HasPrefix(s, "<!DOCTYPE") {
		return nil, fmt.Errorf("sdtd: input does not start with <!DOCTYPE")
	}
	s = strings.TrimPrefix(s, "<!DOCTYPE")
	s = strings.TrimLeft(s, " \t\r\n")
	i := 0
	for i < len(s) && !strings.ContainsRune(" \t\r\n[>", rune(s[i])) {
		i++
	}
	rootTok := s[:i]
	if rootTok == "" {
		return nil, fmt.Errorf("sdtd: missing document type name")
	}
	root, err := parseTaggedName(rootTok)
	if err != nil {
		return nil, err
	}
	s = s[i:]
	open := strings.IndexByte(s, '[')
	if open < 0 {
		return New(root), nil
	}
	closeIdx := strings.LastIndexByte(s, ']')
	if closeIdx < open {
		return nil, fmt.Errorf("sdtd: unterminated internal subset")
	}
	out := New(root)
	rest := s[open+1 : closeIdx]
	for {
		rest = strings.TrimLeft(rest, " \t\r\n")
		if rest == "" {
			break
		}
		if strings.HasPrefix(rest, "<!--") {
			end := strings.Index(rest, "-->")
			if end < 0 {
				break
			}
			rest = rest[end+3:]
			continue
		}
		if !strings.HasPrefix(rest, "<!ELEMENT") {
			return nil, fmt.Errorf("sdtd: unexpected content: %.40q", rest)
		}
		end := strings.IndexByte(rest, '>')
		if end < 0 {
			return nil, fmt.Errorf("sdtd: unterminated declaration")
		}
		decl := strings.TrimSpace(strings.TrimPrefix(rest[:end], "<!ELEMENT"))
		rest = rest[end+1:]
		sp := strings.IndexAny(decl, " \t\r\n")
		if sp < 0 {
			return nil, fmt.Errorf("sdtd: malformed declaration %q", decl)
		}
		name, err := parseTaggedName(decl[:sp])
		if err != nil {
			return nil, err
		}
		if _, dup := out.Types[name]; dup {
			return nil, fmt.Errorf("sdtd: %s declared twice", name)
		}
		spec := strings.TrimSpace(decl[sp:])
		inner := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(spec, "("), ")"))
		if inner == "#PCDATA" {
			out.Declare(name, dtd.PC())
			continue
		}
		model, err := regex.Parse(spec)
		if err != nil {
			return nil, fmt.Errorf("sdtd: %s: %v", name, err)
		}
		out.Declare(name, dtd.M(model))
	}
	if errs := out.Check(); len(errs) > 0 {
		return nil, fmt.Errorf("sdtd: %v", errs[0])
	}
	return out, nil
}

func parseTaggedName(tok string) (Name, error) {
	e, err := regex.Parse(tok)
	if err != nil {
		return Name{}, fmt.Errorf("sdtd: bad name %q: %v", tok, err)
	}
	a, ok := e.(regex.Atom)
	if !ok {
		return Name{}, fmt.Errorf("sdtd: %q is not a (tagged) name", tok)
	}
	return a.Name, nil
}
