package xmas

import (
	"reflect"
	"strings"
	"testing"
)

// Q2 is the paper's Example 3.1 query: professors or grad students with at
// least two journal publications, in the CS department.
const Q2 = `withJournals =
SELECT P
WHERE <department><name>CS</name>
        P:<professor|gradStudent>
           <publication id=Pub1><journal></journal></publication>
           <publication id=Pub2><journal></journal></publication>
        </>
      </department>
AND Pub1 != Pub2`

func TestParseQ2(t *testing.T) {
	q, err := Parse(Q2)
	if err != nil {
		t.Fatalf("Parse(Q2): %v", err)
	}
	if q.Name != "withJournals" || q.PickVar != "P" {
		t.Errorf("header: name=%q pick=%q", q.Name, q.PickVar)
	}
	if len(q.Neq) != 1 || q.Neq[0] != [2]string{"Pub1", "Pub2"} {
		t.Errorf("Neq = %v", q.Neq)
	}
	root := q.Root
	if !reflect.DeepEqual(root.Names, []string{"department"}) {
		t.Fatalf("root names = %v", root.Names)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d", len(root.Children))
	}
	nameCond := root.Children[0]
	if !nameCond.HasText || nameCond.Text != "CS" {
		t.Errorf("name condition = %+v", nameCond)
	}
	pick := root.Children[1]
	if pick.Var != "P" || !reflect.DeepEqual(pick.Names, []string{"professor", "gradStudent"}) {
		t.Errorf("pick condition = %+v", pick)
	}
	if len(pick.Children) != 2 {
		t.Fatalf("pick children = %d", len(pick.Children))
	}
	pub1 := pick.Children[0]
	if pub1.IDVar != "Pub1" || len(pub1.Children) != 1 || pub1.Children[0].Names[0] != "journal" {
		t.Errorf("pub1 = %+v", pub1)
	}
}

func TestParseQ3(t *testing.T) {
	// Example 3.2: all journal publications of professors or students.
	q, err := Parse(`publist =
	SELECT P
	WHERE <department><name>CS</name>
	        <professor|gradStudent>
	          P:<publication><journal/></publication>
	        </>
	      </department>`)
	if err != nil {
		t.Fatalf("Parse(Q3): %v", err)
	}
	path, err := q.PathToPick()
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(path))
	for i, c := range path {
		names[i] = strings.Join(c.Names, "|")
	}
	want := []string{"department", "professor|gradStudent", "publication"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("path = %v, want %v", names, want)
	}
}

func TestParseRecursive(t *testing.T) {
	// Example 3.5's recursive query.
	q, err := Parse(`startsAndEnds =
	SELECT X
	WHERE <section*> X:<prolog|conclusion/> </>`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !q.Root.Recursive {
		t.Error("section* must be recursive")
	}
	if !q.Root.HasRecursive() {
		t.Error("HasRecursive")
	}
}

func TestParseWildcard(t *testing.T) {
	q, err := Parse(`SELECT X WHERE <*> X:<a/> </>`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Root.Names) != 0 {
		t.Errorf("wildcard root names = %v", q.Root.Names)
	}
	if !q.Root.MatchesName("anything") {
		t.Error("wildcard matches any name")
	}
	if q.Root.Children[0].MatchesName("b") {
		t.Error("named condition must not match b")
	}
}

func TestParseDefaults(t *testing.T) {
	q, err := Parse(`SELECT X WHERE X:<a/>`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Name != "answer" {
		t.Errorf("default name = %q", q.Name)
	}
}

func TestParseQuotedID(t *testing.T) {
	q, err := Parse(`SELECT X WHERE X:<a id="I1"/>`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Root.IDVar != "I1" {
		t.Errorf("IDVar = %q", q.Root.IDVar)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`WHERE <a/>`,                            // no SELECT
		`SELECT WHERE <a/>`,                     // missing var (WHERE eaten as var, then no WHERE)
		`SELECT X`,                              // no WHERE
		`SELECT X WHERE <a>`,                    // unterminated
		`SELECT X WHERE X:<a></b>`,              // mismatched end
		`SELECT X WHERE X:<a/> AND Y != Z`,      // unbound vars in !=
		`SELECT X WHERE <a/>`,                   // pick var unbound
		`SELECT X WHERE X:<a/> trailing`,        // trailing junk
		`SELECT X WHERE X:<a id=1/>`,            // bad id value
		`SELECT X WHERE X:<a>text<b/></a>`,      // text + subconditions
		`SELECT X WHERE X:<a/> AND X != X`,      // trivially unsatisfiable
		`SELECT X WHERE <a> X:<b/> X:<c/> </a>`, // X bound twice
		`SELECT X WHERE <|a> X:<b/> </>`,        // empty disjunct
	}
	for _, s := range bad {
		if q, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded: %v", s, q)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	inputs := []string{
		Q2,
		`SELECT X WHERE X:<a/>`,
		`SELECT X WHERE <a> <b>hello world</b> X:<c|d id=I/> </a> AND I != J AND J != K`,
		`SELECT X WHERE <s*> X:<p/> </>`,
	}
	for _, in := range inputs {
		q, err := Parse(in)
		if err != nil {
			if strings.Contains(in, "J != K") {
				continue // J, K unbound: expected to fail
			}
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		back, err := Parse(q.String())
		if err != nil {
			t.Errorf("reparse of %q failed: %v\nrendered:\n%s", in, err, q)
			continue
		}
		if back.String() != q.String() {
			t.Errorf("round trip not stable:\n%s\nvs\n%s", q, back)
		}
	}
}

func TestValidateCollectsAll(t *testing.T) {
	q := &Query{PickVar: "P", Root: &Cond{Names: []string{"a"}}}
	q.Neq = [][2]string{{"X", "Y"}}
	errs := q.Validate()
	if len(errs) < 3 { // P unbound, X unbound, Y unbound
		t.Errorf("Validate = %v", errs)
	}
}

func TestCloneIndependence(t *testing.T) {
	q := MustParse(Q2)
	c := q.Clone()
	c.Root.Children[0].Text = "EE"
	if q.Root.Children[0].Text != "CS" {
		t.Error("Clone must be deep")
	}
	if !reflect.DeepEqual(q.MustPath(t), q.MustPath(t)) {
		t.Error("sanity")
	}
}

// MustPath is a test helper.
func (q *Query) MustPath(t *testing.T) []string {
	t.Helper()
	path, err := q.PathToPick()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(path))
	for i, c := range path {
		out[i] = c.head()
	}
	return out
}

func TestVars(t *testing.T) {
	q := MustParse(Q2)
	got := q.Root.Vars()
	want := []string{"P", "Pub1", "Pub2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Vars = %v, want %v", got, want)
	}
}

func TestSelfClosingAndFullEndTags(t *testing.T) {
	a, err := Parse(`SELECT X WHERE <a> X:<b></b> </a>`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse(`SELECT X WHERE <a> X:<b/> </>`)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("equivalent syntaxes parse differently:\n%s\nvs\n%s", a, b)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse(`select X where X:<a/>`); err != nil {
		t.Errorf("lowercase keywords: %v", err)
	}
}

func TestCondDepthGuard(t *testing.T) {
	deep := "SELECT X WHERE " + strings.Repeat("<a> ", 100000) + "X:<b/>" + strings.Repeat(" </>", 100000)
	if _, err := Parse(deep); err == nil || !strings.Contains(err.Error(), "nesting exceeds") {
		t.Errorf("adversarial nesting must be rejected gracefully, got %v", err)
	}
}

func TestParseQualifier(t *testing.T) {
	q := MustParse(`r = SELECT X WHERE <a> X:<b> <c/> [<d/>] </b> </a>`)
	b := q.Root.Children[0]
	if len(b.Children) != 2 {
		t.Fatalf("b has %d children, want 2", len(b.Children))
	}
	if b.Children[0].Qualifier {
		t.Error("<c/> is a regular condition, not a qualifier")
	}
	if !b.Children[1].Qualifier {
		t.Error("[<d/>] must parse as a qualifier")
	}
	// Qualifiers survive the render/reparse cycle.
	back, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, q)
	}
	if !back.Root.Children[0].Children[1].Qualifier {
		t.Errorf("qualifier flag lost in round trip:\n%s", q)
	}
	if back.String() != q.String() {
		t.Errorf("round trip not stable:\n%s\nvs\n%s", q, back)
	}
}

func TestValidateQualifierRules(t *testing.T) {
	// The pick variable cannot be bound inside a qualifier: qualifiers
	// filter, they do not contribute output elements.
	q := &Query{Name: "r", PickVar: "X", Root: &Cond{
		Names: []string{"a"},
		Children: []*Cond{{
			Names: []string{"b"}, Qualifier: true,
			Children: []*Cond{{Names: []string{"c"}, Var: "X"}},
		}},
	}}
	if errs := q.Validate(); len(errs) == 0 {
		t.Error("pick bound inside a qualifier must be rejected")
	}
	// The root condition itself cannot be a qualifier.
	q2 := &Query{Name: "r", PickVar: "X",
		Root: &Cond{Names: []string{"a"}, Qualifier: true, Var: "X"}}
	if errs := q2.Validate(); len(errs) == 0 {
		t.Error("qualifier root must be rejected")
	}
}
