package xmas

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Parse parses a pick-element XMAS query in the paper's concrete syntax.
// Keywords (SELECT, WHERE, AND) are case-insensitive; end tags may be
// written in full (</department>), generically (</>) or as a self-closing
// start tag (<journal/>). ID attribute values may be bare identifiers
// (id=Pub1) or quoted (id="Pub1"). A subcondition wrapped in square
// brackets ([<journal/>]) parses as a qualifier (Cond.Qualifier); note
// that string content beginning with '[' is therefore read as a
// qualifier, not text. Parse validates the query and returns the first
// validation problem as an error.
func Parse(input string) (*Query, error) {
	p := &qparser{src: input}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if errs := q.Validate(); len(errs) > 0 {
		return nil, errs[0]
	}
	return q, nil
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

// maxCondDepth bounds condition nesting in queries (the parser recurses).
const maxCondDepth = 2048

type qparser struct {
	src   string
	pos   int
	depth int
}

func (p *qparser) errf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:p.pos], "\n")
	return fmt.Errorf("xmas: parse error at line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *qparser) ws() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *qparser) eof() bool { p.ws(); return p.pos >= len(p.src) }

func (p *qparser) peekByte() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *qparser) ident() string {
	p.ws()
	start := p.pos
	for p.pos < len(p.src) {
		r, sz := utf8.DecodeRuneInString(p.src[p.pos:])
		ok := unicode.IsLetter(r) || r == '_' ||
			(p.pos > start && (unicode.IsDigit(r) || r == '-' || r == '.'))
		if !ok {
			break
		}
		p.pos += sz
	}
	return p.src[start:p.pos]
}

func (p *qparser) keyword(kw string) bool {
	p.ws()
	if len(p.src)-p.pos < len(kw) {
		return false
	}
	if !strings.EqualFold(p.src[p.pos:p.pos+len(kw)], kw) {
		return false
	}
	// must not be a prefix of a longer identifier
	if p.pos+len(kw) < len(p.src) {
		r, _ := utf8.DecodeRuneInString(p.src[p.pos+len(kw):])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			return false
		}
	}
	p.pos += len(kw)
	return true
}

func (p *qparser) parseQuery() (*Query, error) {
	q := &Query{Name: "answer"}
	// Optional "name =" prefix.
	save := p.pos
	name := p.ident()
	p.ws()
	if name != "" && !strings.EqualFold(name, "SELECT") && p.peekByte() == '=' {
		p.pos++
		q.Name = name
	} else {
		p.pos = save
	}
	if !p.keyword("SELECT") {
		return nil, p.errf("expected SELECT")
	}
	q.PickVar = p.ident()
	if q.PickVar == "" {
		return nil, p.errf("expected pick variable after SELECT")
	}
	if !p.keyword("WHERE") {
		return nil, p.errf("expected WHERE")
	}
	root, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	q.Root = root
	for {
		p.ws()
		if !p.keyword("AND") {
			break
		}
		a := p.ident()
		p.ws()
		if a == "" || !strings.HasPrefix(p.src[p.pos:], "!=") {
			return nil, p.errf("expected \"var != var\" after AND")
		}
		p.pos += 2
		b := p.ident()
		if b == "" {
			return nil, p.errf("expected variable after !=")
		}
		q.Neq = append(q.Neq, [2]string{a, b})
	}
	if !p.eof() {
		return nil, p.errf("trailing input: %.30q", p.src[p.pos:])
	}
	return q, nil
}

func (p *qparser) parseCond() (*Cond, error) {
	if p.depth >= maxCondDepth {
		return nil, p.errf("condition nesting exceeds %d levels", maxCondDepth)
	}
	p.depth++
	defer func() { p.depth-- }()
	p.ws()
	c := &Cond{}
	// Optional variable binding "V:".
	save := p.pos
	v := p.ident()
	p.ws()
	if v != "" && p.peekByte() == ':' {
		p.pos++
		c.Var = v
		p.ws()
	} else {
		p.pos = save
	}
	if p.peekByte() != '<' {
		return nil, p.errf("expected '<'")
	}
	p.pos++
	// Name position: *, name, or disjunction; trailing * = recursive.
	p.ws()
	if p.peekByte() == '*' {
		p.pos++ // wildcard
	} else {
		for {
			n := p.ident()
			if n == "" {
				return nil, p.errf("expected element name or *")
			}
			c.Names = append(c.Names, n)
			p.ws()
			if p.peekByte() == '|' {
				p.pos++
				p.ws()
				continue
			}
			break
		}
		if p.peekByte() == '*' {
			p.pos++
			c.Recursive = true
		}
	}
	// Attributes: id=Var.
	for {
		p.ws()
		switch p.peekByte() {
		case '>':
			p.pos++
			return p.parseBody(c)
		case '/':
			if strings.HasPrefix(p.src[p.pos:], "/>") {
				p.pos += 2
				return c, nil
			}
			return nil, p.errf("unexpected '/'")
		default:
			attr := p.ident()
			if attr == "" {
				return nil, p.errf("expected '>', '/>' or attribute in %s", c.head())
			}
			p.ws()
			if p.peekByte() != '=' {
				return nil, p.errf("expected '=' after attribute %s", attr)
			}
			p.pos++
			p.ws()
			var val string
			if q := p.peekByte(); q == '"' || q == '\'' {
				p.pos++
				start := p.pos
				for p.pos < len(p.src) && p.src[p.pos] != q {
					p.pos++
				}
				if p.pos >= len(p.src) {
					return nil, p.errf("unterminated attribute value")
				}
				val = p.src[start:p.pos]
				p.pos++
			} else {
				val = p.ident()
				if val == "" {
					return nil, p.errf("expected value for attribute %s", attr)
				}
			}
			if attr == "id" || attr == "ID" {
				c.IDVar = val
			} // other attributes are outside the model and ignored
		}
	}
}

func (p *qparser) parseBody(c *Cond) (*Cond, error) {
	for {
		p.ws()
		if p.pos >= len(p.src) {
			return nil, p.errf("unterminated condition %s", c.head())
		}
		if strings.HasPrefix(p.src[p.pos:], "</") {
			p.pos += 2
			p.ws()
			name := p.ident() // optional; also allow a disjunction or *
			for {
				p.ws()
				if p.peekByte() == '|' || p.peekByte() == '*' {
					p.pos++
					p.ident()
					continue
				}
				break
			}
			p.ws()
			if p.peekByte() != '>' {
				return nil, p.errf("malformed end tag for %s", c.head())
			}
			p.pos++
			if name != "" && len(c.Names) > 0 && !c.MatchesName(name) {
				return nil, p.errf("end tag </%s> does not match %s", name, c.head())
			}
			return c, nil
		}
		if p.peekByte() == '[' {
			// Qualifier: an existential filter condition in brackets.
			p.pos++
			child, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			p.ws()
			if p.peekByte() != ']' {
				return nil, p.errf("expected ']' closing qualifier in %s", c.head())
			}
			p.pos++
			child.Qualifier = true
			c.Children = append(c.Children, child)
			continue
		}
		if p.peekByte() == '<' || startsVarBinding(p.src[p.pos:]) {
			child, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			c.Children = append(c.Children, child)
			continue
		}
		// String-content condition.
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != '<' {
			p.pos++
		}
		text := strings.TrimSpace(p.src[start:p.pos])
		if text == "" {
			return nil, p.errf("unexpected content in %s", c.head())
		}
		if len(c.Children) > 0 {
			return nil, p.errf("condition %s mixes text and subconditions", c.head())
		}
		c.HasText = true
		c.Text = text
	}
}

// startsVarBinding reports whether s begins with "ident :" followed by '<',
// i.e. a variable-bound subcondition.
func startsVarBinding(s string) bool {
	i := 0
	for i < len(s) {
		r, sz := utf8.DecodeRuneInString(s[i:])
		ok := unicode.IsLetter(r) || r == '_' || (i > 0 && (unicode.IsDigit(r) || r == '-' || r == '.'))
		if !ok {
			break
		}
		i += sz
	}
	if i == 0 {
		return false
	}
	for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r') {
		i++
	}
	if i >= len(s) || s[i] != ':' {
		return false
	}
	i++
	for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r') {
		i++
	}
	return i < len(s) && s[i] == '<'
}
