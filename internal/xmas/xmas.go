// Package xmas implements the pick-element fragment of XMAS (XML Matching
// And Structuring), the MIX mediator's query and view definition language
// (Section 2.1). A pick-element query has a SELECT clause with a single
// pick-variable that binds to elements, and a WHERE clause with a single
// tree containment condition applied to one source, plus "!=" constraints
// stating that the IDs of two bound elements differ — the only form of
// negation the language allows.
//
// The concrete syntax follows the paper's examples:
//
//	withJournals =
//	  SELECT P
//	  WHERE <department><name>CS</name>
//	          P:<professor|gradStudent>
//	             <publication id=Pub1><journal></journal></publication>
//	             <publication id=Pub2><journal></journal></publication>
//	          </>
//	        </>
//	  AND Pub1 != Pub2
//
// Element name positions may hold a single name, a disjunction of names
// (professor|gradStudent), or the wildcard * which stands for a variable
// not used elsewhere — the paper's preprocessing replaces it by the
// disjunction of all names in the source DTD. A trailing star inside the
// angle brackets, as in <section*>, denotes a recursive path step
// (Example 3.5): the condition applies at any depth along a chain of
// same-named elements. Inference rejects recursive steps (Section 4.4,
// footnote 9); the query engine evaluates them.
//
// A subcondition wrapped in square brackets, as in
// <professor>[<publication/>]</>, is a qualifier: an existential filter in
// the style of XPath qualifiers. It requires only that some child satisfy
// it and is exempt from the distinct-children reading of regular sibling
// conditions, so it never competes with siblings for witnesses.
package xmas

import (
	"fmt"
	"sort"
	"strings"
)

// Query is a pick-element XMAS query or view definition. A view is a query
// that has been given a name under which the mediator exports it.
type Query struct {
	// Name is the view document name preceding "=". The root element of
	// the result document carries this name. Defaults to "answer".
	Name string
	// PickVar is the SELECT variable; it must be bound exactly once in the
	// condition tree.
	PickVar string
	// Root is the tree condition of the WHERE clause.
	Root *Cond
	// Neq lists pairs of ID variables constrained to be distinct
	// ("Pub1 != Pub2").
	Neq [][2]string
}

// Cond is one node of a tree containment condition.
type Cond struct {
	// Names is the disjunction of element names this condition matches;
	// empty means the wildcard * (any name).
	Names []string
	// Recursive marks a recursive path step: <name*>. The condition then
	// matches name-elements at any nesting depth along a chain of elements
	// drawn from Names.
	Recursive bool
	// Var is the element variable bound to the matched element ("P:<...>").
	Var string
	// IDVar is the variable bound to the matched element's ID
	// ("id=Pub1"). Both Var and IDVar identify elements for the purpose of
	// "!=" constraints.
	IDVar string
	// HasText marks a string-content condition; Text is the required
	// PCDATA value (<name>CS</name>).
	HasText bool
	Text    string
	// Qualifier marks an existential filter condition, written in square
	// brackets: <professor>[<publication/>]</>. A qualifier only tests
	// that SOME child of the parent's match satisfies it — unlike regular
	// sibling conditions it is exempt from the distinct-children
	// assumption of Section 4.2, so several qualifiers (or a qualifier
	// and a regular sibling) may be witnessed by the same child element.
	// Qualifiers are the XMAS analogue of XPath qualifiers, whose
	// satisfiability stays tractable for real-world DTD classes.
	Qualifier bool
	// Children are the subconditions; each non-qualifier child must be
	// matched by a distinct child of the matched element (the paper's
	// Section 4.2 assumption that no two sibling conditions bind to the
	// same element).
	Children []*Cond
}

// Vars collects every element/ID variable bound in the subtree.
func (c *Cond) Vars() []string {
	set := map[string]bool{}
	c.walk(func(n *Cond) {
		if n.Var != "" {
			set[n.Var] = true
		}
		if n.IDVar != "" {
			set[n.IDVar] = true
		}
	})
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func (c *Cond) walk(f func(*Cond)) {
	f(c)
	for _, k := range c.Children {
		k.walk(f)
	}
}

// WalkConds visits c and every descendant condition in preorder.
func (c *Cond) WalkConds(f func(*Cond)) { c.walk(f) }

// HasRecursive reports whether any condition in the subtree is a recursive
// path step.
func (c *Cond) HasRecursive() bool {
	found := false
	c.walk(func(n *Cond) { found = found || n.Recursive })
	return found
}

// MatchesName reports whether the condition's name position admits the
// given element name.
func (c *Cond) MatchesName(name string) bool {
	if len(c.Names) == 0 {
		return true // wildcard
	}
	for _, n := range c.Names {
		if n == name {
			return true
		}
	}
	return false
}

// Validate checks the well-formedness rules of pick-element queries:
// the pick variable is bound exactly once; no variable is bound twice;
// "!=" constraints refer to bound variables; string conditions have no
// subconditions. It returns all problems found.
func (q *Query) Validate() []error {
	var errs []error
	if q.PickVar == "" {
		errs = append(errs, fmt.Errorf("xmas: query has no pick variable"))
	}
	if q.Root == nil {
		errs = append(errs, fmt.Errorf("xmas: query has no condition"))
		return errs
	}
	if q.Root.Qualifier {
		errs = append(errs, fmt.Errorf("xmas: the root condition cannot be a qualifier"))
	}
	bound := map[string]int{}
	var inQualifier func(n *Cond, inside bool)
	inQualifier = func(n *Cond, inside bool) {
		if n.Var == q.PickVar && q.PickVar != "" && inside {
			errs = append(errs, fmt.Errorf("xmas: pick variable %s cannot be bound inside a qualifier", q.PickVar))
		}
		for _, k := range n.Children {
			inQualifier(k, inside || k.Qualifier)
		}
	}
	inQualifier(q.Root, false)
	q.Root.walk(func(n *Cond) {
		if n.Var != "" {
			bound[n.Var]++
		}
		if n.IDVar != "" {
			bound[n.IDVar]++
		}
		if n.HasText && len(n.Children) > 0 {
			errs = append(errs, fmt.Errorf("xmas: condition %s mixes a string value with subconditions", n.head()))
		}
		if n.HasText && n.Recursive {
			errs = append(errs, fmt.Errorf("xmas: recursive condition %s cannot carry a string value", n.head()))
		}
	})
	for v, k := range bound {
		if k > 1 {
			errs = append(errs, fmt.Errorf("xmas: variable %s bound %d times", v, k))
		}
	}
	if q.PickVar != "" && bound[q.PickVar] != 1 {
		errs = append(errs, fmt.Errorf("xmas: pick variable %s is not bound in the condition", q.PickVar))
	}
	for _, pair := range q.Neq {
		for _, v := range pair {
			if bound[v] == 0 {
				errs = append(errs, fmt.Errorf("xmas: != constraint references unbound variable %s", v))
			}
		}
		if pair[0] == pair[1] {
			errs = append(errs, fmt.Errorf("xmas: constraint %s != %s is unsatisfiable", pair[0], pair[1]))
		}
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
	return errs
}

// PathToPick returns the chain of conditions from the root to the pick
// condition, inclusive. The pick-element shape guarantees the chain is
// unique when Validate passes.
func (q *Query) PathToPick() ([]*Cond, error) {
	var path []*Cond
	var find func(c *Cond, acc []*Cond) bool
	find = func(c *Cond, acc []*Cond) bool {
		acc = append(acc, c)
		if c.Var == q.PickVar && q.PickVar != "" {
			path = append([]*Cond(nil), acc...)
			return true
		}
		for _, k := range c.Children {
			if find(k, acc) {
				return true
			}
		}
		return false
	}
	if q.Root == nil || !find(q.Root, nil) {
		return nil, fmt.Errorf("xmas: pick variable %s not found in condition", q.PickVar)
	}
	return path, nil
}

// head renders the opening tag of a condition for diagnostics.
func (c *Cond) head() string {
	var b strings.Builder
	if c.Var != "" {
		b.WriteString(c.Var)
		b.WriteByte(':')
	}
	b.WriteByte('<')
	if len(c.Names) == 0 {
		b.WriteByte('*')
	} else {
		b.WriteString(strings.Join(c.Names, "|"))
	}
	if c.Recursive {
		b.WriteByte('*')
	}
	if c.IDVar != "" {
		b.WriteString(" id=")
		b.WriteString(c.IDVar)
	}
	b.WriteByte('>')
	return b.String()
}

// String renders the query in the paper's concrete syntax; the result
// parses back to an equivalent query.
func (q *Query) String() string {
	var b strings.Builder
	if q.Name != "" {
		fmt.Fprintf(&b, "%s =\n", q.Name)
	}
	fmt.Fprintf(&b, "SELECT %s\nWHERE ", q.PickVar)
	writeCond(&b, q.Root, 1)
	for _, pair := range q.Neq {
		fmt.Fprintf(&b, "\nAND %s != %s", pair[0], pair[1])
	}
	return b.String()
}

func writeCond(b *strings.Builder, c *Cond, level int) {
	b.WriteString(c.head())
	switch {
	case c.HasText:
		b.WriteString(c.Text)
	case len(c.Children) > 0:
		for _, k := range c.Children {
			b.WriteByte('\n')
			b.WriteString(strings.Repeat("  ", level))
			if k.Qualifier {
				b.WriteByte('[')
				writeCond(b, k, level+1)
				b.WriteByte(']')
				continue
			}
			writeCond(b, k, level+1)
		}
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("  ", level-1))
	}
	b.WriteString("</>")
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	c := &Query{Name: q.Name, PickVar: q.PickVar}
	c.Neq = append([][2]string(nil), q.Neq...)
	c.Root = q.Root.Clone()
	return c
}

// Clone returns a deep copy of the condition tree.
func (c *Cond) Clone() *Cond {
	if c == nil {
		return nil
	}
	out := &Cond{
		Names:     append([]string(nil), c.Names...),
		Recursive: c.Recursive,
		Var:       c.Var,
		IDVar:     c.IDVar,
		HasText:   c.HasText,
		Text:      c.Text,
		Qualifier: c.Qualifier,
	}
	for _, k := range c.Children {
		out.Children = append(out.Children, k.Clone())
	}
	return out
}
