package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/xmas"
	"repro/internal/xmlmodel"
)

// TestBacktrackingStress: many same-named children with nested conditions
// exercise the injective-assignment search; the memoized structural check
// must keep it fast. (The guard is the test timeout.)
func TestBacktrackingStress(t *testing.T) {
	var b strings.Builder
	b.WriteString(`<r>`)
	// 40 groups; only the last two contain the marker.
	for i := 0; i < 40; i++ {
		if i >= 38 {
			fmt.Fprintf(&b, `<g id="g%d"><m/><x/></g>`, i)
		} else {
			fmt.Fprintf(&b, `<g id="g%d"><x/></g>`, i)
		}
	}
	b.WriteString(`</r>`)
	doc := parseDoc(t, b.String())
	q := xmas.MustParse(`v = SELECT G WHERE <r> <g id=A><m/></g> G:<g id=B><m/></g> </r> AND A != B`)
	start := time.Now()
	picks, err := EvalElements(q, doc)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("backtracking took %v; memoization is broken", time.Since(start))
	}
	if len(picks) != 2 || picks[0].ID != "g38" || picks[1].ID != "g39" {
		ids := []string{}
		for _, p := range picks {
			ids = append(ids, p.ID)
		}
		t.Errorf("picks = %v, want [g38 g39]", ids)
	}
}

func TestNeqBetweenAncestorAndDescendant(t *testing.T) {
	// Ancestor and descendant are always distinct elements; the constraint
	// is trivially satisfied.
	doc := parseDoc(t, `<r id="r1"><a id="a1"><b id="b1"/></a></r>`)
	q := xmas.MustParse(`v = SELECT B WHERE <r> <a id=OUTER> B:<b id=INNER/> </a> </r> AND OUTER != INNER`)
	ids := pickIDs(t, q.String(), doc)
	if strings.Join(ids, ",") != "b1" {
		t.Errorf("picks = %v", ids)
	}
}

func TestMultipleNeqChains(t *testing.T) {
	// Three pairwise-distinct children required.
	doc3 := parseDoc(t, `<r id="r"><g id="g"><m id="1"/><m id="2"/><m id="3"/></g></r>`)
	doc2 := parseDoc(t, `<r id="r"><g id="g"><m id="1"/><m id="2"/></g></r>`)
	q := `v = SELECT G WHERE <r> G:<g> <m id=A/> <m id=B/> <m id=C/> </g> </r> AND A != B AND A != C AND B != C`
	if ids := pickIDs(t, q, doc3); strings.Join(ids, ",") != "g" {
		t.Errorf("3 children: picks = %v", ids)
	}
	if ids := pickIDs(t, q, doc2); len(ids) != 0 {
		t.Errorf("2 children cannot satisfy 3 distinct conditions: %v", ids)
	}
}

func TestRecursiveStepWithDisjunction(t *testing.T) {
	doc := parseDoc(t, `<a id="a1">
	  <b id="b1"><x id="x1"/></b>
	  <a id="a2"><b id="b2"><x id="x2"/></b></a>
	</a>`)
	// Chain over a|b reaches x at any depth.
	q := `v = SELECT X WHERE <a|b*> X:<x/> </>`
	ids := pickIDs(t, q, doc)
	if strings.Join(ids, ",") != "x1,x2" {
		t.Errorf("picks = %v", ids)
	}
}

func TestTextConditionIgnoresElementContent(t *testing.T) {
	doc := parseDoc(t, `<r id="r"><n id="n1"><sub/></n><n id="n2">CS</n></r>`)
	q := `v = SELECT N WHERE <r> N:<n>CS</n> </r>`
	ids := pickIDs(t, q, doc)
	if strings.Join(ids, ",") != "n2" {
		t.Errorf("picks = %v", ids)
	}
}

func TestEmptyTextVsEmptyElement(t *testing.T) {
	// An element with empty element-content does not match a text
	// condition for "" — but our parser canonicalizes; construct directly.
	root := xmlmodel.NewElement("r",
		xmlmodel.NewElement("n"),    // empty element content
		xmlmodel.NewText("n", "CS"), // text CS
	)
	root.Children[0].ID = "empty"
	root.Children[1].ID = "cs"
	doc := &xmlmodel.Document{Root: root}
	q := xmas.MustParse(`v = SELECT N WHERE <r> N:<n>CS</n> </r>`)
	picks, err := EvalElements(q, doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 1 || picks[0].ID != "cs" {
		t.Errorf("picks = %v", picks)
	}
}

func TestPicksAreDeduplicatedUnderMultipleEmbeddings(t *testing.T) {
	// The pick element matches via several different side-condition
	// embeddings; it must appear once.
	doc := parseDoc(t, `<r id="r"><g id="g"><m id="1"/><m id="2"/><m id="3"/></g></r>`)
	q := `v = SELECT G WHERE <r> G:<g> <m/> </g> </r>`
	ids := pickIDs(t, q, doc)
	if strings.Join(ids, ",") != "g" {
		t.Errorf("picks = %v", ids)
	}
}

func TestWildcardRecursiveStep(t *testing.T) {
	// A recursive wildcard step (any chain of any names) has no concrete
	// syntax, but the engine supports the AST shape; it generalizes
	// XML-QL's descendant axis.
	doc := parseDoc(t, `<a id="1"><b id="2"><c id="3"><leaf id="4"/></c></b></a>`)
	q := &xmas.Query{
		Name:    "v",
		PickVar: "X",
		Root: &xmas.Cond{
			Recursive: true, // wildcard names + recursive = descend anywhere
			Children:  []*xmas.Cond{{Names: []string{"leaf"}, Var: "X"}},
		},
	}
	picks, err := EvalElements(q, doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 1 || picks[0].ID != "4" {
		t.Errorf("picks = %v", picks)
	}
}

// Qualifier semantics (Section 4.2 analogue of XPath qualifiers): a
// bracketed condition filters the parent existentially but never claims a
// child slot of its own — in particular it may share its witness with a
// regular sibling condition.
func TestQualifierFiltersWithoutConsuming(t *testing.T) {
	doc := parseDoc(t, `<lib>
	  <item id="i1"><book/></item>
	  <item id="i2"><disc/></item>
	</lib>`)
	// Only items that (existentially) hold a book qualify.
	ids := pickIDs(t, `r = SELECT X WHERE <lib> X:<item> [<book/>] </item> </lib>`, doc)
	if len(ids) != 1 || ids[0] != "i1" {
		t.Errorf("qualifier pick = %v, want [i1]", ids)
	}
}

func TestQualifierSharesWitnessWithSibling(t *testing.T) {
	// i1 has a single book child. The regular <book/> condition consumes
	// it; the qualifier [<book/>] must still be satisfiable by that same
	// child (qualifiers do not compete for distinct children), so i1
	// matches. Two regular <book/> siblings, by contrast, need two
	// distinct children and must reject i1.
	doc := parseDoc(t, `<lib><item id="i1"><book/></item></lib>`)
	shared := pickIDs(t, `r = SELECT X WHERE <lib> X:<item> <book/> [<book/>] </item> </lib>`, doc)
	if len(shared) != 1 || shared[0] != "i1" {
		t.Errorf("shared-witness pick = %v, want [i1]", shared)
	}
	distinct := pickIDs(t, `r = SELECT X WHERE <lib> X:<item> <book/> <book/> </item> </lib>`, doc)
	if len(distinct) != 0 {
		t.Errorf("two regular conditions matched a single child: %v", distinct)
	}
}
