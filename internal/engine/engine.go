// Package engine evaluates pick-element XMAS queries over XML documents —
// the runtime of the MIX mediator. The semantics follow Section 2.1:
//
//   - the pick-variable binds to every element for which the tree condition
//     embeds into the document;
//   - the picked elements are grouped, in document order (depth-first,
//     left-to-right), under a fresh root element named by the view;
//   - sibling conditions bind to distinct children of their parent's match
//     (the paper's Section 4.2 assumption), and "!=" constraints require
//     the bound elements' IDs to differ;
//   - a qualifier condition ([<journal/>]) is an existential filter: it
//     must embed into some child but does not consume one, so it is exempt
//     from the distinct-children rule;
//   - a recursive step <name*> matches along a chain of name-elements of
//     any depth (Example 3.5).
//
// The condition tree must embed starting at the document root: the root
// condition constrains the root element, as in the paper's examples where
// the outermost <department> condition describes the source document type.
package engine

import (
	"fmt"
	"sort"

	"repro/internal/xmas"
	"repro/internal/xmlmodel"
)

// Eval runs the query against the document and returns the view document:
// a root element named q.Name whose children are (copies of) the elements
// the pick-variable binds to, in document order. An unsatisfied condition
// yields an empty view, not an error.
func Eval(q *xmas.Query, doc *xmlmodel.Document) (*xmlmodel.Document, error) {
	if errs := q.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("engine: invalid query: %v", errs[0])
	}
	if doc == nil || doc.Root == nil {
		return nil, fmt.Errorf("engine: empty document")
	}
	picks, err := EvalElements(q, doc)
	if err != nil {
		return nil, err
	}
	out := EmptyResult(q)
	for _, e := range picks {
		out.Root.Children = append(out.Root.Children, e.Clone())
	}
	return out, nil
}

// EmptyResult returns the view document Eval produces when no element
// binds the pick-variable: a childless root named by the view. Fast paths
// that answer a query without evaluating it (the mediator's unsatisfiable
// skip, per-part pruning that drops every part) MUST build their result
// through this function so their output is bit-identical to a genuine
// zero-match evaluation.
func EmptyResult(q *xmas.Query) *xmlmodel.Document {
	return &xmlmodel.Document{DocType: q.Name, Root: &xmlmodel.Element{Name: q.Name}}
}

// EvalElements returns the elements (of the original document, not copies)
// that the pick-variable binds to, in document order.
func EvalElements(q *xmas.Query, doc *xmlmodel.Document) ([]*xmlmodel.Element, error) {
	path, err := q.PathToPick()
	if err != nil {
		return nil, err
	}
	m := &matcher{q: q, feasible: map[feasKey]bool{}}
	pickCond := path[len(path)-1]

	// Enumerate candidate pick elements, order them by document position
	// (depth-first, left-to-right — the grouping order of Section 2.1),
	// then verify a full anchored embedding for each.
	docPos := map[*xmlmodel.Element]int{}
	pos := 0
	doc.Root.Walk(func(e *xmlmodel.Element) bool { docPos[e] = pos; pos++; return true })
	cands := dedupeInOrder(m.candidates(path, doc.Root))
	sort.Slice(cands, func(i, j int) bool { return docPos[cands[i]] < docPos[cands[j]] })

	var picks []*xmlmodel.Element
	for _, cand := range cands {
		m.anchorCond = pickCond
		m.anchorElem = cand
		env := &env{vars: map[string]*xmlmodel.Element{}, neq: q.Neq}
		if m.embed(q.Root, doc.Root, env) {
			picks = append(picks, cand)
		}
	}
	return picks, nil
}

// Matches reports whether the query's condition embeds into the document at
// all (i.e. whether the view would be non-empty for at least one binding,
// or — for queries whose pick condition is optional — whether the root
// condition holds). It is used by tests and by the mediator's classifier
// cross-checks.
func Matches(q *xmas.Query, doc *xmlmodel.Document) bool {
	picks, err := EvalElements(q, doc)
	return err == nil && len(picks) > 0
}

type feasKey struct {
	c *xmas.Cond
	e *xmlmodel.Element
}

type matcher struct {
	q          *xmas.Query
	anchorCond *xmas.Cond
	anchorElem *xmlmodel.Element
	// feasible caches structural matches ignoring anchors and !=
	// constraints; it prunes the backtracking search.
	feasible map[feasKey]bool
}

// candidates walks the path conditions down the document and returns, in
// document order, every element that could bind the pick-variable on
// name-structure grounds alone (ancestor side conditions are verified later
// by the anchored embedding).
func (m *matcher) candidates(path []*xmas.Cond, root *xmlmodel.Element) []*xmlmodel.Element {
	cur := []*xmlmodel.Element{}
	if path[0].MatchesName(root.Name) {
		cur = m.expandRecursive(path[0], root)
	}
	for _, step := range path[1:] {
		var next []*xmlmodel.Element
		for _, e := range cur {
			for _, k := range e.Children {
				if step.MatchesName(k.Name) {
					next = append(next, m.expandRecursive(step, k)...)
				}
			}
		}
		cur = dedupeInOrder(next)
	}
	return cur
}

// expandRecursive returns e itself for plain steps; for a recursive step it
// returns every element reachable from e by a downward chain of elements
// matching the step's names (including e), in document order.
func (m *matcher) expandRecursive(step *xmas.Cond, e *xmlmodel.Element) []*xmlmodel.Element {
	if !step.Recursive {
		return []*xmlmodel.Element{e}
	}
	var out []*xmlmodel.Element
	var walk func(x *xmlmodel.Element)
	walk = func(x *xmlmodel.Element) {
		out = append(out, x)
		for _, k := range x.Children {
			if step.MatchesName(k.Name) {
				walk(k)
			}
		}
	}
	walk(e)
	return out
}

func dedupeInOrder(es []*xmlmodel.Element) []*xmlmodel.Element {
	seen := map[*xmlmodel.Element]bool{}
	out := es[:0:0]
	for _, e := range es {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

// env tracks variable bindings during an embedding attempt and checks the
// "!=" constraints incrementally: a violation is detected as soon as both
// sides of a pair are bound.
type env struct {
	vars map[string]*xmlmodel.Element
	neq  [][2]string
}

func (v *env) bind(name string, e *xmlmodel.Element) bool {
	if name == "" {
		return true
	}
	v.vars[name] = e
	for _, pair := range v.neq {
		a, aok := v.vars[pair[0]]
		b, bok := v.vars[pair[1]]
		if aok && bok && a == b {
			return false
		}
	}
	return true
}

func (v *env) unbind(name string) {
	if name != "" {
		delete(v.vars, name)
	}
}

// embed attempts to match condition c at element e under the current
// environment, with the anchored condition forced onto the anchored
// element.
func (m *matcher) embed(c *xmas.Cond, e *xmlmodel.Element, en *env) bool {
	if c == m.anchorCond && e != m.anchorElem {
		return false
	}
	if !m.structuralOK(c, e) {
		return false
	}
	if c.Recursive {
		return m.embedRecursiveCond(c, e, en)
	}
	return m.embedHere(c, e, en)
}

// embedRecursiveCond matches a recursive condition: its subconditions hold
// at e, or the condition re-embeds at a child of e with a matching name.
// The anchor applies to the element where the subconditions finally hold.
func (m *matcher) embedRecursiveCond(c *xmas.Cond, e *xmlmodel.Element, en *env) bool {
	if m.embedHere(c, e, en) {
		return true
	}
	for _, k := range e.Children {
		if c.MatchesName(k.Name) && m.structuralOK(c, k) && m.embedRecursiveCond(c, k, en) {
			return true
		}
	}
	return false
}

// embedHere binds c's variables to e and matches c's subconditions against
// distinct children of e.
func (m *matcher) embedHere(c *xmas.Cond, e *xmlmodel.Element, en *env) bool {
	if c == m.anchorCond && e != m.anchorElem {
		return false
	}
	if c.HasText {
		return e.IsText && e.Text == c.Text
	}
	if !en.bind(c.Var, e) {
		en.unbind(c.Var)
		return false
	}
	if !en.bind(c.IDVar, e) {
		en.unbind(c.Var)
		en.unbind(c.IDVar)
		return false
	}
	if m.assignChildren(c.Children, e.Children, 0, map[int]bool{}, en) {
		return true
	}
	en.unbind(c.Var)
	en.unbind(c.IDVar)
	return false
}

// assignChildren finds an injective assignment of the non-qualifier
// conditions to the children, each assigned pair embedding successfully.
// Qualifier conditions are existential: they must embed into some child
// but do not consume it, so they never compete with siblings (or each
// other) for a witness. They still take part in the backtracking so that
// a variable bound under a qualifier can drive "!=" constraints.
func (m *matcher) assignChildren(conds []*xmas.Cond, kids []*xmlmodel.Element, i int, used map[int]bool, en *env) bool {
	if i == len(conds) {
		return true
	}
	c := conds[i]
	for j, k := range kids {
		if !c.Qualifier && used[j] {
			continue
		}
		if !m.quickName(c, k) {
			continue
		}
		if m.embed(c, k, en) {
			if !c.Qualifier {
				used[j] = true
			}
			if m.assignChildren(conds, kids, i+1, used, en) {
				return true
			}
			if !c.Qualifier {
				used[j] = false
			}
			// embed left bindings in place on success only; on the failed
			// continuation we must undo them.
			m.unbindSubtree(c, en)
		}
	}
	return false
}

// unbindSubtree clears every variable bound anywhere under c; used when
// backtracking over a previously successful partial embedding.
func (m *matcher) unbindSubtree(c *xmas.Cond, en *env) {
	for _, v := range c.Vars() {
		delete(en.vars, v)
	}
}

// quickName is the cheapest pruning test.
func (m *matcher) quickName(c *xmas.Cond, e *xmlmodel.Element) bool {
	if c.Recursive {
		return c.MatchesName(e.Name)
	}
	return c.MatchesName(e.Name)
}

// structuralOK reports whether c can match e ignoring variables, anchors
// and != constraints — a necessary condition used to prune backtracking.
// Results are memoized across the whole evaluation.
func (m *matcher) structuralOK(c *xmas.Cond, e *xmlmodel.Element) bool {
	if !c.MatchesName(e.Name) {
		return false
	}
	key := feasKey{c, e}
	if v, ok := m.feasible[key]; ok {
		return v
	}
	m.feasible[key] = true // assume feasible on cycles (recursive conds revisit)
	ok := m.structuralHere(c, e)
	if !ok && c.Recursive {
		for _, k := range e.Children {
			if c.MatchesName(k.Name) && m.structuralOK(c, k) {
				ok = true
				break
			}
		}
	}
	m.feasible[key] = ok
	return ok
}

func (m *matcher) structuralHere(c *xmas.Cond, e *xmlmodel.Element) bool {
	if c.HasText {
		return e.IsText && e.Text == c.Text
	}
	if len(c.Children) == 0 {
		return true
	}
	if e.IsText {
		return false
	}
	// Injective feasibility via backtracking on the (small) bipartite
	// compatibility relation. Qualifier children are existential and do
	// not consume a child slot.
	var rec func(i int, used map[int]bool) bool
	rec = func(i int, used map[int]bool) bool {
		if i == len(c.Children) {
			return true
		}
		cc := c.Children[i]
		for j, k := range e.Children {
			if (!cc.Qualifier && used[j]) || !cc.MatchesName(k.Name) {
				continue
			}
			if !m.structuralMatchChild(cc, k) {
				continue
			}
			if cc.Qualifier {
				return rec(i+1, used)
			}
			used[j] = true
			if rec(i+1, used) {
				return true
			}
			used[j] = false
		}
		return false
	}
	return rec(0, map[int]bool{})
}

func (m *matcher) structuralMatchChild(c *xmas.Cond, e *xmlmodel.Element) bool {
	if c.Recursive {
		return m.structuralOK(c, e)
	}
	if !c.MatchesName(e.Name) {
		return false
	}
	return m.structuralOK(c, e)
}
