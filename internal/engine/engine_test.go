package engine

import (
	"strings"
	"testing"

	"repro/internal/xmas"
	"repro/internal/xmlmodel"
)

// deptDoc is a department document conforming to the paper's DTD D1, with
// professors/students of varying publication profiles:
//   - prof Ana: two journal papers          → qualifies for Q2
//   - prof Bob: one journal, one conference → does not qualify
//   - grad Cyd: three journals              → qualifies
//   - grad Dan: conferences only            → does not qualify
const deptDoc = `<department>
  <name>CS</name>
  <professor id="ana">
    <firstName>Ana</firstName><lastName>A</lastName>
    <publication id="a1"><title>t1</title><author>Ana</author><journal>J1</journal></publication>
    <publication id="a2"><title>t2</title><author>Ana</author><journal>J2</journal></publication>
    <teaches>cse100</teaches>
  </professor>
  <professor id="bob">
    <firstName>Bob</firstName><lastName>B</lastName>
    <publication id="b1"><title>t3</title><author>Bob</author><journal>J1</journal></publication>
    <publication id="b2"><title>t4</title><author>Bob</author><conference>C1</conference></publication>
    <teaches>cse101</teaches>
  </professor>
  <gradStudent id="cyd">
    <firstName>Cyd</firstName><lastName>C</lastName>
    <publication id="c1"><title>t5</title><author>Cyd</author><journal>J1</journal></publication>
    <publication id="c2"><title>t6</title><author>Cyd</author><journal>J3</journal></publication>
    <publication id="c3"><title>t7</title><author>Cyd</author><journal>J2</journal></publication>
  </gradStudent>
  <gradStudent id="dan">
    <firstName>Dan</firstName><lastName>D</lastName>
    <publication id="d1"><title>t8</title><author>Dan</author><conference>C2</conference></publication>
  </gradStudent>
</department>`

const q2Text = `withJournals =
SELECT P
WHERE <department><name>CS</name>
        P:<professor|gradStudent>
           <publication id=Pub1><journal/></publication>
           <publication id=Pub2><journal/></publication>
        </>
      </department>
AND Pub1 != Pub2`

func parseDoc(t *testing.T, s string) *xmlmodel.Document {
	t.Helper()
	doc, _, err := xmlmodel.Parse(s)
	if err != nil {
		t.Fatalf("parse doc: %v", err)
	}
	return doc
}

func pickIDs(t *testing.T, q string, doc *xmlmodel.Document) []string {
	t.Helper()
	query := xmas.MustParse(q)
	picks, err := EvalElements(query, doc)
	if err != nil {
		t.Fatalf("EvalElements: %v", err)
	}
	ids := make([]string, len(picks))
	for i, e := range picks {
		ids[i] = e.ID
	}
	return ids
}

func TestQ2TwoDistinctJournals(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	ids := pickIDs(t, q2Text, doc)
	want := []string{"ana", "cyd"}
	if strings.Join(ids, ",") != strings.Join(want, ",") {
		t.Errorf("picks = %v, want %v (Pub1 != Pub2 demands two distinct journal publications)", ids, want)
	}
}

func TestQ2WithoutNeqAdmitsSingleJournal(t *testing.T) {
	// Dropping "AND Pub1 != Pub2" but keeping two sibling publication
	// conditions: sibling conditions still bind to distinct children
	// (Section 4.2 assumption), so the result is unchanged here.
	q := strings.Replace(q2Text, "\nAND Pub1 != Pub2", "", 1)
	doc := parseDoc(t, deptDoc)
	ids := pickIDs(t, q, doc)
	if strings.Join(ids, ",") != "ana,cyd" {
		t.Errorf("picks = %v", ids)
	}
	// With only one publication condition, Bob qualifies too.
	q1 := `SELECT P WHERE <department><name>CS</name>
	  P:<professor|gradStudent><publication><journal/></publication></>
	</department>`
	ids = pickIDs(t, q1, doc)
	if strings.Join(ids, ",") != "ana,bob,cyd" {
		t.Errorf("picks = %v, want ana,bob,cyd", ids)
	}
}

func TestQ3PicksJournalPublications(t *testing.T) {
	// Example 3.2's Q3: all publications with a journal subelement.
	q := `publist =
	SELECT P
	WHERE <department><name>CS</name>
	        <professor|gradStudent>
	          P:<publication><journal/></publication>
	        </>
	      </department>`
	doc := parseDoc(t, deptDoc)
	ids := pickIDs(t, q, doc)
	want := "a1,a2,b1,c1,c2,c3"
	if strings.Join(ids, ",") != want {
		t.Errorf("picks = %v, want %s", ids, want)
	}
}

func TestViewDocumentShape(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	q := xmas.MustParse(q2Text)
	view, err := Eval(q, doc)
	if err != nil {
		t.Fatal(err)
	}
	if view.Root.Name != "withJournals" || view.DocType != "withJournals" {
		t.Errorf("view root = %s", view.Root.Name)
	}
	if len(view.Root.Children) != 2 {
		t.Fatalf("view children = %d", len(view.Root.Children))
	}
	// Picked elements are deep copies, not aliases.
	view.Root.Children[0].Children[0].Text = "mutated"
	orig, _, _ := xmlmodel.Parse(deptDoc)
	if doc.Root.Equal(orig.Root) == false {
		t.Error("Eval must copy picked elements")
	}
	// Document order: ana before cyd, and ana's subtree is intact.
	if view.Root.Children[0].ID != "ana" || view.Root.Children[1].ID != "cyd" {
		t.Errorf("order: %s, %s", view.Root.Children[0].ID, view.Root.Children[1].ID)
	}
	if len(view.Root.Children[0].Children) != 5 {
		t.Errorf("ana's children = %d, want full subtree", len(view.Root.Children[0].Children))
	}
}

func TestTextConditionFiltersDepartment(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	q := `SELECT P WHERE <department><name>EE</name> P:<professor/> </department>`
	if ids := pickIDs(t, q, doc); len(ids) != 0 {
		t.Errorf("EE department should not match, got %v", ids)
	}
}

func TestRootNameMismatchYieldsEmpty(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	q := `SELECT P WHERE <university> P:<professor/> </university>`
	if ids := pickIDs(t, q, doc); len(ids) != 0 {
		t.Errorf("got %v", ids)
	}
}

func TestWildcardPick(t *testing.T) {
	doc := parseDoc(t, `<r><a id="1"/><b id="2"><c id="3"/></b></r>`)
	q := `SELECT X WHERE <r> X:<*/> </r>`
	ids := pickIDs(t, q, doc)
	if strings.Join(ids, ",") != "1,2" {
		t.Errorf("wildcard picks = %v", ids)
	}
}

func TestRecursivePath(t *testing.T) {
	// Example 3.5: prologs and conclusions at any section depth.
	doc := parseDoc(t, `<section id="s1">
	  <prolog id="p1"/>
	  <section id="s2">
	    <prolog id="p2"/>
	    <section id="s3"><prolog id="p3"/><conclusion id="c3"/></section>
	    <conclusion id="c2"/>
	  </section>
	  <conclusion id="c1"/>
	</section>`)
	q := `startsAndEnds = SELECT X WHERE <section*> X:<prolog|conclusion/> </>`
	ids := pickIDs(t, q, doc)
	want := "p1,p2,p3,c3,c2,c1" // document order
	if strings.Join(ids, ",") != want {
		t.Errorf("picks = %v, want %s", ids, want)
	}
}

func TestRecursiveWithInnerCondition(t *testing.T) {
	doc := parseDoc(t, `<s id="top">
	  <s id="mid"><x id="x1"/><marker/></s>
	  <s id="leaf"><x id="x2"/></s>
	</s>`)
	// Only sections (at any depth) that contain a marker expose their x.
	q := `SELECT X WHERE <s*> X:<x/> <marker/> </>`
	ids := pickIDs(t, q, doc)
	if strings.Join(ids, ",") != "x1" {
		t.Errorf("picks = %v, want x1", ids)
	}
}

func TestNeqAcrossBranches(t *testing.T) {
	doc := parseDoc(t, `<r>
	  <g id="g1"><m id="m1"/></g>
	  <g id="g2"><m id="m2"/><m id="m3"/></g>
	</r>`)
	// Pick groups that contain two distinct m's.
	q := `SELECT G WHERE <r> G:<g> <m id=A/> <m id=B/> </g> </r> AND A != B`
	ids := pickIDs(t, q, doc)
	if strings.Join(ids, ",") != "g2" {
		t.Errorf("picks = %v, want g2", ids)
	}
}

func TestSiblingDistinctness(t *testing.T) {
	// Two sibling conditions on the same name require two children even
	// without an explicit != (Section 4.2 assumption).
	doc := parseDoc(t, `<r><g id="g1"><m/></g><g id="g2"><m/><m/></g></r>`)
	q := `SELECT G WHERE <r> G:<g> <m/> <m/> </g> </r>`
	ids := pickIDs(t, q, doc)
	if strings.Join(ids, ",") != "g2" {
		t.Errorf("picks = %v, want g2", ids)
	}
}

func TestEmptyViewIsValidDocument(t *testing.T) {
	doc := parseDoc(t, `<r><a/></r>`)
	q := xmas.MustParse(`v = SELECT X WHERE <r> X:<b/> </r>`)
	view, err := Eval(q, doc)
	if err != nil {
		t.Fatal(err)
	}
	if view.Root.Name != "v" || len(view.Root.Children) != 0 {
		t.Errorf("view = %s", xmlmodel.MarshalElement(view.Root, -1))
	}
	if Matches(q, doc) {
		t.Error("Matches must be false for an empty result")
	}
}

func TestPickAtRoot(t *testing.T) {
	doc := parseDoc(t, `<r id="root"><a/></r>`)
	ids := pickIDs(t, `SELECT X WHERE X:<r><a/></r>`, doc)
	if strings.Join(ids, ",") != "root" {
		t.Errorf("picks = %v", ids)
	}
}

func TestDeepTextCondition(t *testing.T) {
	doc := parseDoc(t, deptDoc)
	// Professors who teach cse101.
	q := `SELECT P WHERE <department> P:<professor><teaches>cse101</teaches></professor> </department>`
	ids := pickIDs(t, q, doc)
	if strings.Join(ids, ",") != "bob" {
		t.Errorf("picks = %v, want bob", ids)
	}
}

func TestEvalErrors(t *testing.T) {
	q := &xmas.Query{Name: "v"} // invalid: no pick var, no condition
	if _, err := Eval(q, parseDoc(t, `<r/>`)); err == nil {
		t.Error("invalid query must error")
	}
	good := xmas.MustParse(`SELECT X WHERE X:<r/>`)
	if _, err := Eval(good, &xmlmodel.Document{}); err == nil {
		t.Error("empty document must error")
	}
}

func TestSameElementCannotServeTwoSiblingConditions(t *testing.T) {
	// A single journal publication cannot satisfy both publication
	// conditions of Q2 even without the != constraint.
	doc := parseDoc(t, `<department><name>CS</name>
	  <professor id="solo">
	    <firstName>S</firstName><lastName>S</lastName>
	    <publication id="s1"><title>t</title><author>s</author><journal>J</journal></publication>
	    <teaches>c</teaches>
	  </professor>
	  <gradStudent id="g"><firstName>g</firstName><lastName>g</lastName>
	    <publication id="g1"><title>t</title><author>g</author><journal>J</journal></publication>
	  </gradStudent>
	</department>`)
	ids := pickIDs(t, q2Text, doc)
	if len(ids) != 0 {
		t.Errorf("picks = %v, want none", ids)
	}
}
