package engine

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/xmas"
	"repro/internal/xmlmodel"
)

// referenceEval is an independent, brute-force implementation of the
// pick-element semantics: it enumerates every embedding of the condition
// tree (sibling conditions on pairwise-distinct children, recursive steps
// expanded by chain, != constraints on the final assignment) and collects
// the pick bindings. Exponential and only fit for tiny inputs — which is
// exactly what a differential-testing oracle should be: too simple to
// share bugs with the optimized engine.
func referenceEval(q *xmas.Query, doc *xmlmodel.Document) []*xmlmodel.Element {
	path, err := q.PathToPick()
	if err != nil {
		return nil
	}
	pick := path[len(path)-1]
	var picks []*xmlmodel.Element
	seen := map[*xmlmodel.Element]bool{}
	for _, asg := range embeddings(q.Root, doc.Root) {
		if !neqOK(q, asg) {
			continue
		}
		e := asg[pick]
		if e != nil && !seen[e] {
			seen[e] = true
			picks = append(picks, e)
		}
	}
	// Document order.
	pos := map[*xmlmodel.Element]int{}
	i := 0
	doc.Root.Walk(func(e *xmlmodel.Element) bool { pos[e] = i; i++; return true })
	for a := 0; a < len(picks); a++ {
		for b := a + 1; b < len(picks); b++ {
			if pos[picks[b]] < pos[picks[a]] {
				picks[a], picks[b] = picks[b], picks[a]
			}
		}
	}
	return picks
}

type assignment map[*xmas.Cond]*xmlmodel.Element

// embeddings returns every assignment of the condition subtree rooted at c
// when matched against element e (empty slice = no embedding).
func embeddings(c *xmas.Cond, e *xmlmodel.Element) []assignment {
	if !c.MatchesName(e.Name) {
		return nil
	}
	if c.Recursive {
		// Match here, or descend along a matching chain.
		out := embedHereRef(c, e)
		for _, k := range e.Children {
			if c.MatchesName(k.Name) {
				out = append(out, embeddings(c, k)...)
			}
		}
		return out
	}
	return embedHereRef(c, e)
}

func embedHereRef(c *xmas.Cond, e *xmlmodel.Element) []assignment {
	if c.HasText {
		if e.IsText && e.Text == c.Text {
			return []assignment{{c: e}}
		}
		return nil
	}
	// Choose pairwise-distinct children for the subconditions, in every
	// possible way.
	results := []assignment{{}}
	used := make([]bool, len(e.Children))
	var rec func(i int, acc assignment) []assignment
	rec = func(i int, acc assignment) []assignment {
		if i == len(c.Children) {
			cp := assignment{}
			for k, v := range acc {
				cp[k] = v
			}
			return []assignment{cp}
		}
		var out []assignment
		for j, k := range e.Children {
			if used[j] {
				continue
			}
			for _, sub := range embeddings(c.Children[i], k) {
				used[j] = true
				merged := assignment{}
				for a, b := range acc {
					merged[a] = b
				}
				for a, b := range sub {
					merged[a] = b
				}
				out = append(out, rec(i+1, merged)...)
				used[j] = false
			}
		}
		return out
	}
	if len(c.Children) > 0 {
		results = rec(0, assignment{})
	}
	for i := range results {
		results[i][c] = e
	}
	return results
}

func neqOK(q *xmas.Query, asg assignment) bool {
	// Resolve variables to elements.
	vars := map[string]*xmlmodel.Element{}
	for c, e := range asg {
		if c.Var != "" {
			vars[c.Var] = e
		}
		if c.IDVar != "" {
			vars[c.IDVar] = e
		}
	}
	for _, pair := range q.Neq {
		a, aok := vars[pair[0]]
		b, bok := vars[pair[1]]
		if aok && bok && a == b {
			return false
		}
	}
	return true
}

// randomDocForRef builds small random documents over a fixed name pool.
func randomDocForRef(r *rand.Rand, depth int) *xmlmodel.Element {
	names := []string{"a", "b", "c"}
	e := xmlmodel.NewElement(names[r.Intn(len(names))])
	if depth <= 0 {
		if r.Intn(3) == 0 {
			e.IsText = true
			e.Text = []string{"x", "y"}[r.Intn(2)]
		}
		return e
	}
	n := r.Intn(4)
	for i := 0; i < n; i++ {
		e.Children = append(e.Children, randomDocForRef(r, depth-1))
	}
	return e
}

// randomQueryForRef builds a small random pick-element query over the same
// name pool.
func randomQueryForRef(r *rand.Rand) *xmas.Query {
	names := []string{"a", "b", "c"}
	pickDepth := 1 + r.Intn(2)
	var build func(d int) *xmas.Cond
	build = func(d int) *xmas.Cond {
		c := &xmas.Cond{}
		switch r.Intn(4) {
		case 0: // wildcard
		case 1:
			c.Names = []string{names[r.Intn(3)], names[r.Intn(3)]}
			if c.Names[0] == c.Names[1] {
				c.Names = c.Names[:1]
			}
		default:
			c.Names = []string{names[r.Intn(3)]}
		}
		if d == pickDepth {
			c.Var = "P"
			if r.Intn(3) == 0 {
				c.Children = append(c.Children, &xmas.Cond{Names: []string{names[r.Intn(3)]}})
			}
			return c
		}
		c.Children = append(c.Children, build(d+1))
		if r.Intn(3) == 0 {
			side := &xmas.Cond{Names: []string{names[r.Intn(3)]}}
			if r.Intn(3) == 0 {
				side.HasText, side.Text = true, "x"
			}
			c.Children = append(c.Children, side)
		}
		return c
	}
	q := &xmas.Query{Name: "v", PickVar: "P", Root: build(0)}
	// Occasionally demand two distinct same-named children of the pick.
	if r.Intn(3) == 0 {
		path, _ := q.PathToPick()
		if path != nil {
			pick := path[len(path)-1]
			n := names[r.Intn(3)]
			pick.Children = append(pick.Children,
				&xmas.Cond{Names: []string{n}, IDVar: "I1"},
				&xmas.Cond{Names: []string{n}, IDVar: "I2"})
			q.Neq = append(q.Neq, [2]string{"I1", "I2"})
		}
	}
	if errs := q.Validate(); len(errs) > 0 {
		return nil
	}
	return q
}

// TestEngineAgreesWithReference is the engine's differential oracle: on
// thousands of random (document, query) pairs the optimized backtracking
// engine must return exactly the brute-force semantics.
func TestEngineAgreesWithReference(t *testing.T) {
	r := rand.New(rand.NewSource(1999)) // the year of the paper
	rounds := 3000
	checked := 0
	for i := 0; i < rounds; i++ {
		q := randomQueryForRef(r)
		if q == nil {
			continue
		}
		doc := &xmlmodel.Document{Root: randomDocForRef(r, 3)}
		got, err := EvalElements(q, doc)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		want := referenceEval(q, doc)
		if len(got) != len(want) {
			t.Fatalf("round %d: engine %d picks, reference %d\nquery:\n%s\ndoc: %s",
				i, len(got), len(want), q, xmlmodel.MarshalElement(doc.Root, -1))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("round %d: pick %d differs\nquery:\n%s\ndoc: %s",
					i, j, q, xmlmodel.MarshalElement(doc.Root, -1))
			}
		}
		if len(got) > 0 {
			checked++
		}
	}
	if checked < rounds/20 {
		t.Fatalf("only %d/%d rounds had non-empty results; generator too weak", checked, rounds)
	}
	t.Logf("%d rounds, %d with non-empty results", rounds, checked)
}

func TestReferenceSelfCheck(t *testing.T) {
	// The oracle itself must agree with a hand-computed case.
	doc, _, err := xmlmodel.Parse(`<a><b id="1"><c/></b><b id="2"/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	q := xmas.MustParse(`v = SELECT X WHERE <a> X:<b><c/></b> </a>`)
	picks := referenceEval(q, doc)
	ids := []string{}
	for _, p := range picks {
		ids = append(ids, p.ID)
	}
	if strings.Join(ids, ",") != "1" {
		t.Errorf("reference picks = %v", ids)
	}
}
