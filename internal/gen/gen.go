// Package gen generates random valid documents from a DTD — the synthetic
// workload substrate for soundness testing (Definition 3.1 quantifies over
// all source documents; we sample) and for the benchmark harness. The
// generator walks each content model's DFA, choosing uniformly among
// transitions whose subtrees fit the remaining depth budget and stopping at
// accepting states with a probability that grows the sequences only
// moderately; when the budget is exhausted it switches to a precomputed
// minimal completion policy, which guarantees termination even for
// recursive DTDs.
package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/automata"
	"repro/internal/dtd"
	"repro/internal/regex"
	"repro/internal/xmlmodel"
)

// Options controls document generation.
type Options struct {
	// Seed seeds the deterministic PRNG.
	Seed int64
	// MaxDepth bounds element nesting softly; past it the generator takes
	// minimal completions. Default 12.
	MaxDepth int
	// LengthBias in (0,1]: probability of stopping at an accepting state
	// per step once at least one symbol has been emitted; higher = shorter
	// child sequences. Default 0.35.
	LengthBias float64
	// TextPool supplies PCDATA values; a value is picked uniformly.
	TextPool []string
	// AssignIDs gives every generated element a unique ID.
	AssignIDs bool
}

func (o Options) withDefaults() Options {
	if o.MaxDepth == 0 {
		o.MaxDepth = 12
	}
	if o.LengthBias == 0 {
		o.LengthBias = 0.35
	}
	if len(o.TextPool) == 0 {
		o.TextPool = []string{"CS", "EE", "alpha", "beta", "gamma", "x1", "t42"}
	}
	return o
}

// validate rejects option values that would silently produce degenerate
// corpora: a LengthBias outside (0,1] either never stops growing child
// sequences (≤ 0 after defaulting is impossible, but negatives reach here
// before defaulting) or is a meaningless probability above 1, and a
// negative MaxDepth forces every element onto the minimal-completion path,
// collapsing all documents to the same skeleton. Zero values still mean
// "use the default".
func (o Options) validate() error {
	if o.LengthBias < 0 || o.LengthBias > 1 {
		return fmt.Errorf("gen: LengthBias must be in (0,1] (0 for the default), got %v", o.LengthBias)
	}
	if o.MaxDepth < 0 {
		return fmt.Errorf("gen: MaxDepth must be positive (0 for the default), got %d", o.MaxDepth)
	}
	return nil
}

// policy is the per-name walking machinery: the content model DFA, plain
// shortest-distance-to-accept, the min-max completion cost R (the smallest
// c such that an accepting path exists using only symbols whose subtree
// cost is ≤ c), and a forced-move table that follows an R-optimal
// completion and provably terminates.
type policy struct {
	dfa  *automata.DFA
	dist []int // shortest #moves to acceptance; -1 unreachable
	r    []int // min over accepting paths of max symbol cost; -1 unreachable
	next []int // forced move (alphabet index) on an R-optimal path; -1 at acceptance
}

// Generator produces random documents valid under a fixed DTD.
type Generator struct {
	dtd      *dtd.DTD
	opts     Options
	rng      *rand.Rand
	policies map[string]*policy
	// cost[n] = minimal element-tree depth needed to realize name n;
	// -1 for unrealizable names.
	cost map[string]int
}

// New builds a generator for the DTD. It fails when the document type is
// unrealizable — no finite valid document exists at all.
func New(d *dtd.DTD, opts Options) (*Generator, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if errs := d.Check(); len(errs) > 0 {
		return nil, fmt.Errorf("gen: inconsistent DTD: %v", errs[0])
	}
	g := &Generator{
		dtd:      d,
		opts:     opts.withDefaults(),
		rng:      rand.New(rand.NewSource(opts.Seed)),
		policies: map[string]*policy{},
		cost:     map[string]int{},
	}
	g.computeCosts()
	if g.cost[d.Root] < 0 {
		return nil, fmt.Errorf("gen: document type %s is unrealizable", d.Root)
	}
	return g, nil
}

// computeCosts computes the minimal realization depth of each name: 1 for
// PCDATA, and 1 + the minimal over accepting words of the maximal child
// cost otherwise. Names left at -1 are unrealizable.
func (g *Generator) computeCosts() {
	for _, n := range g.dtd.Names() {
		g.cost[n] = -1
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.dtd.Names() {
			t := g.dtd.Types[n]
			var c int
			if t.PCDATA {
				c = 1
			} else {
				body := g.minWordCost(t.Model)
				if body < 0 {
					continue
				}
				c = 1 + body
			}
			if g.cost[n] == -1 || c < g.cost[n] {
				g.cost[n] = c
				changed = true
			}
		}
	}
}

// minWordCost returns the minimal over words w ∈ L(e) of the max cost of
// the names in w (0 for the empty word), or -1 when no word over currently
// realizable names exists. It is exact for the fixpoint in computeCosts
// because it is monotone in g.cost.
func (g *Generator) minWordCost(e regex.Expr) int {
	switch v := e.(type) {
	case regex.Empty:
		return 0
	case regex.Fail:
		return -1
	case regex.Atom:
		return g.cost[v.Name.Base] // -1 when unrealizable
	case regex.Opt, regex.Star:
		return 0
	case regex.Plus:
		return g.minWordCost(v.Sub)
	case regex.Concat:
		worst := 0
		for _, it := range v.Items {
			c := g.minWordCost(it)
			if c < 0 {
				return -1
			}
			if c > worst {
				worst = c
			}
		}
		return worst
	case regex.Alt:
		best := -1
		for _, it := range v.Items {
			c := g.minWordCost(it)
			if c >= 0 && (best < 0 || c < best) {
				best = c
			}
		}
		return best
	}
	panic(fmt.Sprintf("gen: unknown node %T", e))
}

func (g *Generator) policy(name string) *policy {
	if p, ok := g.policies[name]; ok {
		return p
	}
	// Restrict to realizable names so walks never enter dead symbols.
	d := automata.FromExpr(g.dtd.Types[name].Model).
		RestrictTo(func(n regex.Name) bool { return g.cost[n.Base] >= 0 })
	p := &policy{dfa: d, dist: d.DistToAccept()}
	p.r = g.completionCost(d)
	p.next = g.forcedMoves(d, p.r)
	g.policies[name] = p
	return p
}

// completionCost computes R[s]: the minimal over accepting paths from s of
// the maximal symbol cost on the path (0 when s accepts), by fixpoint
// relaxation: R[s] = min over moves of max(cost(sym), R[next]).
func (g *Generator) completionCost(d *automata.DFA) []int {
	const inf = 1 << 30
	r := make([]int, d.NumStates())
	for s := range r {
		if d.Accept[s] {
			r[s] = 0
		} else {
			r[s] = inf
		}
	}
	for changed := true; changed; {
		changed = false
		for s := range r {
			if d.Accept[s] {
				continue
			}
			best := r[s]
			for ai := range d.Alphabet {
				c := g.cost[d.Alphabet[ai].Base]
				if c < 0 {
					continue
				}
				next := d.Trans[s][ai]
				if r[next] >= inf {
					continue
				}
				v := c
				if r[next] > v {
					v = r[next]
				}
				if v < best {
					best = v
				}
			}
			if best < r[s] {
				r[s] = best
				changed = true
			}
		}
	}
	for s := range r {
		if r[s] >= inf {
			r[s] = -1
		}
	}
	return r
}

// forcedMoves computes, for every non-accepting state with finite R, a
// transition on an R-optimal path that strictly approaches acceptance: a
// BFS backward from accepting states inside the subgraph of moves with
// max(cost(sym), R[next]) ≤ R[s]. Following these moves terminates in at
// most NumStates steps.
func (g *Generator) forcedMoves(d *automata.DFA, r []int) []int {
	next := make([]int, d.NumStates())
	depth := make([]int, d.NumStates())
	for s := range next {
		next[s] = -1
		depth[s] = -1
		if d.Accept[s] {
			depth[s] = 0
		}
	}
	for changed := true; changed; {
		changed = false
		for s := range next {
			if d.Accept[s] || r[s] < 0 {
				continue
			}
			for ai := range d.Alphabet {
				c := g.cost[d.Alphabet[ai].Base]
				if c < 0 {
					continue
				}
				ns := d.Trans[s][ai]
				if r[ns] < 0 || depth[ns] < 0 {
					continue
				}
				v := c
				if r[ns] > v {
					v = r[ns]
				}
				if v > r[s] {
					continue // not on an R-optimal path
				}
				if depth[s] < 0 || depth[ns]+1 < depth[s] {
					depth[s] = depth[ns] + 1
					next[s] = ai
					changed = true
				}
			}
		}
	}
	return next
}

// Document generates one random valid document.
func (g *Generator) Document() *xmlmodel.Document {
	root := g.Element(g.dtd.Root, g.opts.MaxDepth)
	doc := &xmlmodel.Document{DocType: g.dtd.Root, Root: root}
	if g.opts.AssignIDs {
		// Error impossible: all IDs are fresh.
		_ = root.AssignIDs("e")
	}
	return doc
}

// Element generates a random element of the given name within the depth
// budget. The name must be realizable (New rejects DTDs whose document
// type is not; other names are reached only through realizable models).
func (g *Generator) Element(name string, depth int) *xmlmodel.Element {
	t := g.dtd.Types[name]
	if t.PCDATA {
		return xmlmodel.NewText(name, g.opts.TextPool[g.rng.Intn(len(g.opts.TextPool))])
	}
	p := g.policy(name)
	e := xmlmodel.NewElement(name)
	state := p.dfa.Start
	emitted := 0
	forced := depth <= g.cost[name]
	for {
		if p.dfa.Accept[state] {
			if forced || (emitted > 0 && g.rng.Float64() < g.opts.LengthBias) {
				return e
			}
		}
		var sym int
		if forced {
			sym = p.next[state]
			if sym < 0 {
				return e // accepting (or no completion; cannot happen for realizable names)
			}
		} else {
			// Random choice among in-budget live moves.
			var moves []int
			for ai := range p.dfa.Alphabet {
				ns := p.dfa.Trans[state][ai]
				c := g.cost[p.dfa.Alphabet[ai].Base]
				if c >= 0 && c <= depth-1 && p.dist[ns] >= 0 {
					moves = append(moves, ai)
				}
			}
			if len(moves) == 0 {
				// Nothing fits the budget: finish minimally from here.
				forced = true
				continue
			}
			sym = moves[g.rng.Intn(len(moves))]
		}
		child := g.Element(p.dfa.Alphabet[sym].Base, depth-1)
		e.Children = append(e.Children, child)
		state = p.dfa.Trans[state][sym]
		emitted++
	}
}

// Corpus generates n documents.
func (g *Generator) Corpus(n int) []*xmlmodel.Document {
	out := make([]*xmlmodel.Document, n)
	for i := range out {
		out[i] = g.Document()
	}
	return out
}

// Describe summarizes a corpus for logging: count, total and mean element
// counts.
func Describe(docs []*xmlmodel.Document) string {
	total := 0
	for _, d := range docs {
		total += d.Root.Size()
	}
	mean := 0.0
	if len(docs) > 0 {
		mean = float64(total) / float64(len(docs))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d documents, %d elements total, %.1f mean", len(docs), total, mean)
	return b.String()
}
