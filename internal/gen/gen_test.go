package gen

import (
	"testing"

	"repro/internal/dtd"
	"repro/internal/regex"
	"repro/internal/xmlmodel"
)

const d1Text = `<!DOCTYPE department [
  <!ELEMENT department (name, professor+, gradStudent+, course*)>
  <!ELEMENT professor (firstName, lastName, publication+, teaches)>
  <!ELEMENT gradStudent (firstName, lastName, publication+)>
  <!ELEMENT publication (title, author+, (journal|conference))>
  <!ELEMENT name (#PCDATA)> <!ELEMENT firstName (#PCDATA)>
  <!ELEMENT lastName (#PCDATA)> <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)> <!ELEMENT journal (#PCDATA)>
  <!ELEMENT conference (#PCDATA)> <!ELEMENT course (#PCDATA)>
  <!ELEMENT teaches (#PCDATA)>
]>`

func mustDTD(t *testing.T, s string) *dtd.DTD {
	t.Helper()
	d, err := dtd.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGeneratedDocumentsAreValid(t *testing.T) {
	d := mustDTD(t, d1Text)
	g, err := New(d, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, doc := range g.Corpus(200) {
		if err := d.Validate(doc); err != nil {
			t.Fatalf("doc %d invalid: %v", i, err)
		}
	}
}

func TestRecursiveDTDTerminatesAndValidates(t *testing.T) {
	d := mustDTD(t, `<!DOCTYPE section [
	  <!ELEMENT section (prolog, section*, conclusion)>
	  <!ELEMENT prolog (#PCDATA)> <!ELEMENT conclusion (#PCDATA)>
	]>`)
	g, err := New(d, Options{Seed: 7, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i, doc := range g.Corpus(100) {
		if err := d.Validate(doc); err != nil {
			t.Fatalf("doc %d invalid: %v", i, err)
		}
	}
}

func TestMutuallyRecursiveDTD(t *testing.T) {
	d := mustDTD(t, `<!DOCTYPE a [
	  <!ELEMENT a (b | leaf)>
	  <!ELEMENT b (a, a?)>
	  <!ELEMENT leaf (#PCDATA)>
	]>`)
	g, err := New(d, Options{Seed: 3, MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, doc := range g.Corpus(100) {
		if err := d.Validate(doc); err != nil {
			t.Fatalf("doc %d invalid: %v", i, err)
		}
	}
}

func TestInvalidOptionsRejected(t *testing.T) {
	d := mustDTD(t, d1Text)
	cases := []struct {
		name string
		opts Options
	}{
		{"negative LengthBias", Options{Seed: 1, LengthBias: -0.1}},
		{"LengthBias above 1", Options{Seed: 1, LengthBias: 1.5}},
		{"negative MaxDepth", Options{Seed: 1, MaxDepth: -3}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(d, c.opts); err == nil {
				t.Errorf("New(%+v) must fail", c.opts)
			}
		})
	}
	// The boundary values stay accepted: 1 is a legal bias (always stop at
	// the first accepting state), 0 means "default" for both knobs.
	for _, opts := range []Options{
		{Seed: 1, LengthBias: 1},
		{Seed: 1},
		{Seed: 1, MaxDepth: 1},
	} {
		g, err := New(d, opts)
		if err != nil {
			t.Fatalf("New(%+v): %v", opts, err)
		}
		if err := d.Validate(g.Document()); err != nil {
			t.Fatalf("New(%+v) generated an invalid document: %v", opts, err)
		}
	}
}

func TestUnrealizableRootRejected(t *testing.T) {
	d := dtd.New("loop")
	d.Declare("loop", dtd.M(regex.MustParse("loop")))
	if _, err := New(d, Options{Seed: 1}); err == nil {
		t.Error("unrealizable document type must be rejected")
	}
}

func TestUnrealizableBranchAvoided(t *testing.T) {
	// The b-branch is unrealizable; every generated document must use a.
	d := mustDTD(t, `<!DOCTYPE r [
	  <!ELEMENT r (a | b)>
	  <!ELEMENT a (#PCDATA)>
	  <!ELEMENT b (b)>
	]>`)
	g, err := New(d, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i, doc := range g.Corpus(100) {
		if err := d.Validate(doc); err != nil {
			t.Fatalf("doc %d invalid: %v", i, err)
		}
		if doc.Root.Children[0].Name != "a" {
			t.Fatalf("doc %d used unrealizable branch b", i)
		}
	}
}

func TestDeterminismAndSeedVariation(t *testing.T) {
	d := mustDTD(t, d1Text)
	g1, _ := New(d, Options{Seed: 42})
	g2, _ := New(d, Options{Seed: 42})
	a := g1.Document()
	b := g2.Document()
	if !a.Root.Equal(b.Root) {
		t.Error("same seed must generate the same document")
	}
	g3, _ := New(d, Options{Seed: 43})
	diff := false
	for i := 0; i < 10 && !diff; i++ {
		if !g1.Document().Root.StructuralEqual(g3.Document().Root) {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should eventually diverge")
	}
}

func TestAssignIDs(t *testing.T) {
	d := mustDTD(t, d1Text)
	g, _ := New(d, Options{Seed: 5, AssignIDs: true})
	doc := g.Document()
	seen := map[string]bool{}
	doc.Root.Walk(func(e *xmlmodel.Element) bool {
		if e.ID == "" {
			t.Errorf("element %s has no ID", e.Name)
		}
		if seen[e.ID] {
			t.Errorf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
		return true
	})
}

func TestLengthBiasShapesDocuments(t *testing.T) {
	d := mustDTD(t, d1Text)
	short, _ := New(d, Options{Seed: 9, LengthBias: 0.9})
	long, _ := New(d, Options{Seed: 9, LengthBias: 0.05})
	sSize, lSize := 0, 0
	for i := 0; i < 30; i++ {
		sSize += short.Document().Root.Size()
		lSize += long.Document().Root.Size()
	}
	if sSize >= lSize {
		t.Errorf("low bias should give larger documents: short=%d long=%d", sSize, lSize)
	}
}

func TestDescribe(t *testing.T) {
	d := mustDTD(t, d1Text)
	g, _ := New(d, Options{Seed: 2})
	s := Describe(g.Corpus(3))
	if s == "" {
		t.Error("empty description")
	}
	if Describe(nil) == "" {
		t.Error("empty corpus description")
	}
}
