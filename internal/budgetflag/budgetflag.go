// Package budgetflag installs the shared -budget-* command-line flags the
// MIX tools use to bound inference-side automata work (internal/budget).
// The three knobs mirror Limits' resource axes; -budget-refine rides along
// for completeness but the headline flags named in the docs are deadline,
// states and classes.
package budgetflag

import (
	"flag"

	"repro/internal/budget"
)

// Register installs the -budget-deadline, -budget-states, -budget-classes
// and -budget-refine flags on fs and returns a function that assembles the
// resulting Limits once fs has been parsed. Zero values leave the
// corresponding resource unlimited, so running without any -budget-* flag
// is exactly the unbudgeted behavior.
func Register(fs *flag.FlagSet) func() budget.Limits {
	deadline := fs.Duration("budget-deadline", 0,
		"wall-clock budget for DTD inference/analysis (0 = unlimited)")
	states := fs.Int64("budget-states", 0,
		"max DFA states constructed during inference/analysis (0 = unlimited)")
	classes := fs.Int64("budget-classes", 0,
		"max structural classes enumerated (0 = unlimited)")
	refine := fs.Int64("budget-refine", 0,
		"max refinement steps, in AST nodes processed (0 = unlimited)")
	return func() budget.Limits {
		return budget.Limits{
			Deadline:       *deadline,
			MaxStates:      *states,
			MaxClasses:     *classes,
			MaxRefineSteps: *refine,
		}
	}
}
