package budget

import (
	"sync"
	"testing"
)

// recordingObserver is a test Observer accumulating the charge stream.
type recordingObserver struct {
	mu      sync.Mutex
	charges map[string]int64
	events  map[string]int64
}

func newRecordingObserver() *recordingObserver {
	return &recordingObserver{charges: map[string]int64{}, events: map[string]int64{}}
}

func (o *recordingObserver) BudgetCharge(resource string, n int64) {
	o.mu.Lock()
	o.charges[resource] += n
	o.mu.Unlock()
}

func (o *recordingObserver) BudgetEvent(event string, n int64) {
	o.mu.Lock()
	o.events[event]++
	o.mu.Unlock()
}

func TestObserverSeesChargesAndSingleExhaustionEvent(t *testing.T) {
	b := New(Limits{MaxStates: 10})
	o := newRecordingObserver()
	b.SetObserver(o)
	for i := 0; i < 5; i++ {
		if err := b.ChargeStates(2); err != nil {
			t.Fatalf("charge %d: %v", i, err)
		}
	}
	// Next two charges exhaust; the event must fire exactly once.
	if err := b.ChargeStates(1); err == nil {
		t.Fatal("11th state must exhaust")
	}
	if err := b.ChargeStates(1); err == nil {
		t.Fatal("exhaustion must be sticky")
	}
	b.NoteEvent("automata.compile", 7)
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.charges[ResourceStates] != 10 {
		t.Errorf("observed charges = %d, want the 10 successful units", o.charges[ResourceStates])
	}
	if o.events["budget.exhausted."+ResourceStates] != 1 {
		t.Errorf("exhaustion events = %d, want exactly 1", o.events["budget.exhausted."+ResourceStates])
	}
	if o.events["automata.compile"] != 1 {
		t.Errorf("NoteEvent must reach the observer: %v", o.events)
	}
}

func TestObserverDetachAndNilSafety(t *testing.T) {
	b := New(Limits{})
	o := newRecordingObserver()
	b.SetObserver(o)
	if err := b.ChargeRefine(3); err != nil {
		t.Fatal(err)
	}
	b.SetObserver(nil)
	if err := b.ChargeRefine(4); err != nil {
		t.Fatal(err)
	}
	o.mu.Lock()
	got := o.charges[ResourceRefine]
	o.mu.Unlock()
	if got != 3 {
		t.Errorf("detached observer still notified: %d, want 3", got)
	}
	var nilBud *Budget
	nilBud.SetObserver(o) // must not panic
	nilBud.NoteEvent("e", 1)
}

// TestObserverIsPerBudget: a child's charges propagate to the parent's
// counters but notify only the child's observer — a span watching one
// request must not see sibling requests' charges.
func TestObserverIsPerBudget(t *testing.T) {
	parent := New(Limits{})
	po, co := newRecordingObserver(), newRecordingObserver()
	parent.SetObserver(po)
	child := parent.Child(Limits{})
	child.SetObserver(co)
	if err := child.ChargeClasses(5); err != nil {
		t.Fatal(err)
	}
	if parent.Usage().Classes != 5 {
		t.Errorf("parent counters must aggregate the child's charge")
	}
	po.mu.Lock()
	pn := po.charges[ResourceClasses]
	po.mu.Unlock()
	co.mu.Lock()
	cn := co.charges[ResourceClasses]
	co.mu.Unlock()
	if pn != 0 || cn != 5 {
		t.Errorf("parent observed %d (want 0), child observed %d (want 5)", pn, cn)
	}
}

func TestObserverConcurrent(t *testing.T) {
	b := New(Limits{})
	o := newRecordingObserver()
	b.SetObserver(o)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = b.ChargeStates(1)
			}
		}()
	}
	wg.Wait()
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.charges[ResourceStates] != workers*per {
		t.Errorf("observed = %d, want %d", o.charges[ResourceStates], workers*per)
	}
}
