package budget

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	if err := b.ChargeStates(1 << 40); err != nil {
		t.Fatalf("nil budget charged: %v", err)
	}
	if err := b.ChargeClasses(1); err != nil {
		t.Fatalf("nil budget charged: %v", err)
	}
	if err := b.ChargeRefine(1); err != nil {
		t.Fatalf("nil budget charged: %v", err)
	}
	if err := b.Err(); err != nil {
		t.Fatalf("nil budget errored: %v", err)
	}
	if b.Exhausted() != nil {
		t.Fatal("nil budget exhausted")
	}
	if u := b.Usage(); u != (Usage{}) {
		t.Fatalf("nil budget usage: %+v", u)
	}
	c := b.Child(Limits{MaxStates: 5})
	if c == nil || c.parent != nil {
		t.Fatal("nil.Child must build a root budget")
	}
}

func TestStateCapIsSticky(t *testing.T) {
	b := New(Limits{MaxStates: 10})
	for i := 0; i < 10; i++ {
		if err := b.ChargeStates(1); err != nil {
			t.Fatalf("charge %d within limit failed: %v", i, err)
		}
	}
	err := b.ChargeStates(1)
	if err == nil {
		t.Fatal("charge over limit succeeded")
	}
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("exhaustion does not match ErrExhausted: %v", err)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Resource != ResourceStates || ex.Limit != 10 {
		t.Fatalf("wrong exhaustion detail: %v", err)
	}
	// Sticky: every later charge — of any resource — fails with the same
	// first reason.
	if err2 := b.ChargeClasses(1); err2 == nil {
		t.Fatal("post-exhaustion charge of another resource succeeded")
	} else if !errors.As(err2, &ex) || ex.Resource != ResourceStates {
		t.Fatalf("stickiness lost the first reason: %v", err2)
	}
	if b.Err() == nil || b.Exhausted() == nil {
		t.Fatal("Err/Exhausted must report the sticky exhaustion")
	}
	if got := b.Usage().Exhausted; got == "" {
		t.Fatal("Usage must carry the exhaustion reason")
	}
}

func TestDeadline(t *testing.T) {
	b := New(Limits{Deadline: time.Millisecond})
	time.Sleep(5 * time.Millisecond)
	err := b.ChargeStates(1)
	if err == nil {
		t.Fatal("charge after deadline succeeded")
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Resource != ResourceDeadline {
		t.Fatalf("wrong deadline error: %v", err)
	}
	if b.Err() == nil {
		t.Fatal("Err must observe the passed deadline")
	}
}

func TestChildPropagatesToParent(t *testing.T) {
	parent := New(Limits{MaxStates: 10})
	c1 := parent.Child(Limits{})
	c2 := parent.Child(Limits{})
	if err := c1.ChargeStates(6); err != nil {
		t.Fatalf("first child charge failed: %v", err)
	}
	if err := c2.ChargeStates(6); err == nil {
		t.Fatal("parent cap must bound the children's sum")
	}
	// The first child keeps working until it next observes the parent.
	if c1.Exhausted() != nil {
		t.Fatal("sibling exhaustion must not pre-poison c1")
	}
	if err := c1.ChargeStates(1); err == nil {
		t.Fatal("parent is exhausted; child charge must fail")
	}
}

func TestChildOwnCapAndDeadlineInheritance(t *testing.T) {
	parent := New(Limits{Deadline: time.Hour})
	c := parent.Child(Limits{MaxStates: 2})
	pd, _ := parent.Deadline()
	cd, ok := c.Deadline()
	if !ok || !cd.Equal(pd) {
		t.Fatalf("child deadline %v must inherit parent %v", cd, pd)
	}
	if err := c.ChargeStates(3); err == nil {
		t.Fatal("child's own cap must bind")
	}
	if parent.Err() != nil {
		t.Fatal("child cap exhaustion must not exhaust the parent")
	}
}

func TestContextPlumbing(t *testing.T) {
	b := New(Limits{MaxClasses: 1})
	ctx := NewContext(context.Background(), b)
	if FromContext(ctx) != b {
		t.Fatal("FromContext lost the budget")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext invented a budget")
	}
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("NewContext must not impose a deadline")
	}
	db := New(Limits{Deadline: time.Hour})
	dctx, cancel := db.Context(context.Background())
	defer cancel()
	if _, ok := dctx.Deadline(); !ok {
		t.Fatal("Budget.Context must impose the budget deadline")
	}
	if FromContext(dctx) != db {
		t.Fatal("Budget.Context must attach the budget")
	}
}

func TestConcurrentCharges(t *testing.T) {
	b := New(Limits{MaxStates: 1000})
	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := b.ChargeStates(1); err != nil {
					failures.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if b.Exhausted() == nil {
		t.Fatal("4000 charges against a 1000 cap must exhaust")
	}
	if failures.Load() == 0 {
		t.Fatal("some charges must have failed")
	}
}
