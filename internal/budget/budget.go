// Package budget provides hierarchical resource budgets for the
// inference side of the mediator. The paper proves that tight view DTDs
// can be expensive — or outright unattainable (Examples 3.1/3.5) — while
// soundness is always within reach, so every potentially exponential
// operation (DFA subset construction, product constructions, structural
// class enumeration, sequential refinement) charges a budget and stops
// when it runs out. Callers then degrade to a sound-but-looser result
// instead of hanging or exhausting memory: the partial order of
// Definition 3.2 licenses exactly that trade.
//
// A Budget carries four independently configurable resources:
//
//   - a wall-clock deadline,
//   - a DFA state-count cap (subset construction + products),
//   - a structural-class cap (tightness.EnumerateClasses),
//   - a refine-step cap, in AST nodes passed through refinement
//     (infer's sequential refinement loop).
//
// Budgets form a hierarchy: a Child's charges propagate to its parent, so
// a process-wide budget can bound the sum of many per-view budgets while
// each view also has its own caps. Exhaustion is sticky — after the first
// exhausted charge every later charge fails with the same error — which is
// what makes "skip refinement for the exhausted element names" a
// well-defined degradation: everything after the first overrun takes the
// cheap sound path.
//
// The nil *Budget is valid everywhere and means "unlimited"; threading a
// budget through existing code therefore never needs nil checks.
package budget

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrExhausted is the sentinel matched by errors.Is for every budget
// exhaustion, whatever the resource that ran out.
var ErrExhausted = errors.New("budget exhausted")

// Observer receives a budget's charge stream for observability. It is
// satisfied by obs.(*Span) without either package importing the other:
// successful charges are coalesced into per-resource span counters and
// discrete milestones become span events — which is how a degraded
// request's trace shows where its budget went.
//
// Implementations must be safe for concurrent use: charges arrive from
// the inference fan-out workers.
type Observer interface {
	// BudgetCharge reports a successful charge of n units of a resource
	// (ResourceStates, ResourceClasses, ResourceRefine).
	BudgetCharge(resource string, n int64)
	// BudgetEvent reports a discrete milestone: the first exhaustion
	// ("budget.exhausted.<resource>", n = limit) or an annotation posted
	// via NoteEvent (e.g. automata cold compiles).
	BudgetEvent(event string, n int64)
}

// Resource names used in ExhaustedError and Usage.
const (
	ResourceDeadline = "deadline"
	ResourceStates   = "dfa-states"
	ResourceClasses  = "classes"
	ResourceRefine   = "refine-steps"
)

// ExhaustedError reports which resource ran out and at what limit. It
// matches ErrExhausted under errors.Is.
type ExhaustedError struct {
	Resource string
	Limit    int64
}

func (e *ExhaustedError) Error() string {
	if e.Resource == ResourceDeadline {
		return fmt.Sprintf("budget exhausted: deadline (%s) passed", time.Duration(e.Limit))
	}
	return fmt.Sprintf("budget exhausted: %s limit %d reached", e.Resource, e.Limit)
}

// Is makes errors.Is(err, ErrExhausted) true for every ExhaustedError.
func (e *ExhaustedError) Is(target error) bool { return target == ErrExhausted }

// Limits configures a Budget. A zero field means that resource is
// unlimited; the zero Limits value is a fully unlimited budget (useful as
// a hierarchy root that only aggregates usage).
type Limits struct {
	// Deadline is the wall-clock allowance measured from New/Child.
	Deadline time.Duration
	// MaxStates caps the number of DFA states constructed (subset
	// construction and product states both count).
	MaxStates int64
	// MaxClasses caps the number of structural classes enumerated.
	MaxClasses int64
	// MaxRefineSteps caps refinement work, counted in AST nodes passed
	// through the sequential refinement loop (size-proportional, so one
	// cap bounds both step count and expression growth).
	MaxRefineSteps int64
}

// Unlimited reports whether every resource is unconstrained.
func (l Limits) Unlimited() bool {
	return l.Deadline == 0 && l.MaxStates == 0 && l.MaxClasses == 0 && l.MaxRefineSteps == 0
}

// Usage is a point-in-time snapshot of a budget's consumption.
type Usage struct {
	States      int64 `json:"states"`
	Classes     int64 `json:"classes"`
	RefineSteps int64 `json:"refine_steps"`
	// Exhausted is non-empty when the budget has run out; it holds the
	// first exhaustion's error text.
	Exhausted string `json:"exhausted,omitempty"`
}

// Budget is a set of resource counters with limits and an optional
// parent. All methods are safe for concurrent use and valid on a nil
// receiver (a nil Budget is unlimited and never exhausts).
type Budget struct {
	parent *Budget
	limits Limits
	// deadline is the absolute cutoff (zero when none); it already
	// incorporates the parent's deadline at construction time.
	deadline time.Time

	states  atomic.Int64
	classes atomic.Int64
	refines atomic.Int64

	// exhausted holds the first ExhaustedError observed; later charges
	// return it unchanged (sticky exhaustion).
	exhausted atomic.Pointer[ExhaustedError]

	// observer receives the charge stream (see Observer); nil when the
	// budget is unobserved.
	observer atomic.Pointer[Observer]
}

// New returns a budget with the given limits. The deadline clock starts
// now.
func New(l Limits) *Budget {
	b := &Budget{limits: l}
	if l.Deadline > 0 {
		b.deadline = time.Now().Add(l.Deadline)
	}
	return b
}

// Child returns a budget with its own limits whose charges also propagate
// to b: the child exhausts when either its own caps or any ancestor's are
// hit. The child's deadline never exceeds the parent's. Child on a nil
// budget is New (a root).
func (b *Budget) Child(l Limits) *Budget {
	c := New(l)
	if b == nil {
		return c
	}
	c.parent = b
	if !b.deadline.IsZero() && (c.deadline.IsZero() || b.deadline.Before(c.deadline)) {
		c.deadline = b.deadline
	}
	return c
}

// SetObserver attaches (or, with nil, detaches) the observer receiving
// this budget's charge stream. Observers are per-budget: a child's
// charges propagate to the parent's counters but only notify the child's
// own observer, so a span observing a request budget is not spammed by
// sibling requests. Safe for concurrent use; nil budgets ignore it.
func (b *Budget) SetObserver(o Observer) {
	if b == nil {
		return
	}
	if o == nil {
		b.observer.Store(nil)
		return
	}
	b.observer.Store(&o)
}

// notifyCharge reports a successful charge to the observer, if any.
func (b *Budget) notifyCharge(resource string, n int64) {
	if p := b.observer.Load(); p != nil {
		(*p).BudgetCharge(resource, n)
	}
}

// NoteEvent posts a discrete annotation to the budget's observer (e.g.
// "automata.compile" with the state count of a cold compile). It charges
// nothing and is valid on nil budgets; unobserved budgets drop it.
func (b *Budget) NoteEvent(event string, n int64) {
	if b == nil {
		return
	}
	if p := b.observer.Load(); p != nil {
		(*p).BudgetEvent(event, n)
	}
}

// exhaust records the first exhaustion and returns the winning error, so
// every caller sees one consistent reason. The first exhaustion — and
// only the first — is surfaced to the observer as a discrete event.
func (b *Budget) exhaust(e *ExhaustedError) *ExhaustedError {
	if b.exhausted.CompareAndSwap(nil, e) {
		b.NoteEvent("budget.exhausted."+e.Resource, e.Limit)
		return e
	}
	return b.exhausted.Load()
}

// charge adds n to the counter, enforcing the limit, the deadline, and
// stickiness, then propagates to the parent.
func (b *Budget) charge(counter *atomic.Int64, limit, n int64, resource string) error {
	if b == nil {
		return nil
	}
	if e := b.exhausted.Load(); e != nil {
		return e
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		return b.exhaust(&ExhaustedError{Resource: ResourceDeadline, Limit: int64(b.limits.Deadline)})
	}
	total := counter.Add(n)
	if limit > 0 && total > limit {
		return b.exhaust(&ExhaustedError{Resource: resource, Limit: limit})
	}
	if b.parent != nil {
		if err := b.parent.charge(parentCounter(b.parent, resource), parentLimit(b.parent, resource), n, resource); err != nil {
			var ex *ExhaustedError
			if errors.As(err, &ex) {
				return b.exhaust(ex)
			}
			return err
		}
	}
	return nil
}

func parentCounter(p *Budget, resource string) *atomic.Int64 {
	switch resource {
	case ResourceClasses:
		return &p.classes
	case ResourceRefine:
		return &p.refines
	default:
		return &p.states
	}
}

func parentLimit(p *Budget, resource string) int64 {
	switch resource {
	case ResourceClasses:
		return p.limits.MaxClasses
	case ResourceRefine:
		return p.limits.MaxRefineSteps
	default:
		return p.limits.MaxStates
	}
}

// ChargeStates records the construction of n DFA states.
func (b *Budget) ChargeStates(n int64) error {
	if b == nil {
		return nil
	}
	err := b.charge(&b.states, b.limits.MaxStates, n, ResourceStates)
	if err == nil {
		b.notifyCharge(ResourceStates, n)
	}
	return err
}

// ChargeClasses records the enumeration of n structural classes.
func (b *Budget) ChargeClasses(n int64) error {
	if b == nil {
		return nil
	}
	err := b.charge(&b.classes, b.limits.MaxClasses, n, ResourceClasses)
	if err == nil {
		b.notifyCharge(ResourceClasses, n)
	}
	return err
}

// ChargeRefine records n units of refinement work (AST nodes refined).
func (b *Budget) ChargeRefine(n int64) error {
	if b == nil {
		return nil
	}
	err := b.charge(&b.refines, b.limits.MaxRefineSteps, n, ResourceRefine)
	if err == nil {
		b.notifyCharge(ResourceRefine, n)
	}
	return err
}

// Err reports the budget's current state without charging anything: nil
// while resources remain, the (sticky) exhaustion error once any charge
// failed or the deadline passed.
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	if e := b.exhausted.Load(); e != nil {
		return e
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		return b.exhaust(&ExhaustedError{Resource: ResourceDeadline, Limit: int64(b.limits.Deadline)})
	}
	if b.parent != nil {
		if err := b.parent.Err(); err != nil {
			var ex *ExhaustedError
			if errors.As(err, &ex) {
				return b.exhaust(ex)
			}
			return err
		}
	}
	return nil
}

// Exhausted returns the first exhaustion, or nil while the budget holds.
// Unlike Err it does not re-check the deadline — it only reports what a
// charge or Err already observed.
func (b *Budget) Exhausted() *ExhaustedError {
	if b == nil {
		return nil
	}
	return b.exhausted.Load()
}

// Usage returns a snapshot of the consumed resources.
func (b *Budget) Usage() Usage {
	if b == nil {
		return Usage{}
	}
	u := Usage{
		States:      b.states.Load(),
		Classes:     b.classes.Load(),
		RefineSteps: b.refines.Load(),
	}
	if e := b.exhausted.Load(); e != nil {
		u.Exhausted = e.Error()
	}
	return u
}

// Deadline returns the absolute cutoff and whether one is set.
func (b *Budget) Deadline() (time.Time, bool) {
	if b == nil || b.deadline.IsZero() {
		return time.Time{}, false
	}
	return b.deadline, true
}

type ctxKey struct{}

// NewContext attaches b to the context for FromContext to recover. It
// deliberately does NOT bound the context by the budget's deadline:
// budget exhaustion must degrade (sound-but-loose results), while context
// cancellation is an error — conflating them would turn every deadline
// into a failure. Use Context when cancellation on deadline is wanted.
func NewContext(ctx context.Context, b *Budget) context.Context {
	if b == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, b)
}

// FromContext returns the budget attached by NewContext or Context, or
// nil (= unlimited) when none is attached.
func FromContext(ctx context.Context) *Budget {
	b, _ := ctx.Value(ctxKey{}).(*Budget)
	return b
}

// Context attaches b and additionally bounds the context by the budget's
// deadline, for operations that want cooperative cancellation of worker
// pools when time runs out (the workers' partial output is still used).
func (b *Budget) Context(ctx context.Context) (context.Context, context.CancelFunc) {
	if b == nil {
		return context.WithCancel(ctx)
	}
	ctx = NewContext(ctx, b)
	if b.deadline.IsZero() {
		return context.WithCancel(ctx)
	}
	return context.WithDeadline(ctx, b.deadline)
}
