package dtd

import "testing"

func mustParse(t *testing.T, text string) *DTD {
	t.Helper()
	d, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestEquivalent exercises the language-equality decision replica
// registration rests on: syntactic differences that keep the language
// (reordered alternations, unreachable declarations) compare equal, while
// any reachable difference — root, name set, PCDATA vs element content,
// content model language — does not.
func TestEquivalent(t *testing.T) {
	base := `<!DOCTYPE r [
	  <!ELEMENT r (a, (b|c)*)>
	  <!ELEMENT a (#PCDATA)> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)>
	]>`
	cases := []struct {
		name string
		a, b string
		want bool
	}{
		{"identical", base, base, true},
		{"reordered alternation", base, `<!DOCTYPE r [
		  <!ELEMENT r (a, (c|b)*)>
		  <!ELEMENT a (#PCDATA)> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)>
		]>`, true},
		{"unreachable declaration ignored", base, `<!DOCTYPE r [
		  <!ELEMENT r (a, (b|c)*)>
		  <!ELEMENT a (#PCDATA)> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)>
		  <!ELEMENT ghost (a, b, c)>
		]>`, true},
		{"different root", base, `<!DOCTYPE a [
		  <!ELEMENT a (#PCDATA)>
		]>`, false},
		{"different name set", base, `<!DOCTYPE r [
		  <!ELEMENT r (a, (b|d)*)>
		  <!ELEMENT a (#PCDATA)> <!ELEMENT b (#PCDATA)> <!ELEMENT d (#PCDATA)>
		]>`, false},
		{"pcdata vs element content", base, `<!DOCTYPE r [
		  <!ELEMENT r (a, (b|c)*)>
		  <!ELEMENT a (b)> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)>
		]>`, false},
		{"different model language", base, `<!DOCTYPE r [
		  <!ELEMENT r (a, (b|c)+)>
		  <!ELEMENT a (#PCDATA)> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)>
		]>`, false},
	}
	for _, c := range cases {
		da, db := mustParse(t, c.a), mustParse(t, c.b)
		if got := Equivalent(da, db); got != c.want {
			t.Errorf("%s: Equivalent = %v, want %v", c.name, got, c.want)
		}
		if got := Equivalent(db, da); got != c.want {
			t.Errorf("%s (flipped): Equivalent = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestEquivalentNil: nil compares equal only to nil.
func TestEquivalentNil(t *testing.T) {
	d := mustParse(t, `<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]>`)
	if !Equivalent(nil, nil) {
		t.Error("nil/nil must be equivalent")
	}
	if Equivalent(d, nil) || Equivalent(nil, d) {
		t.Error("nil must not be equivalent to a real DTD")
	}
}
