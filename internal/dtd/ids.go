package dtd

import (
	"fmt"

	"repro/internal/xmlmodel"
)

// ValidateIDs checks the ID-uniqueness requirement of a valid document
// (Appendix A: "no two elements in the document have the same id").
// The paper's model assumes every element carries an ID (Definition 2.1);
// by default elements without one are tolerated — the in-memory model
// treats a missing ID as "not yet assigned" — unless requireAll is set.
func ValidateIDs(doc *xmlmodel.Document, requireAll bool) error {
	if doc == nil || doc.Root == nil {
		return &ValidationError{Path: "/", Msg: "empty document"}
	}
	seen := map[string]string{} // id -> first path
	var verr error
	path := []string{}
	var walk func(e *xmlmodel.Element) bool
	walk = func(e *xmlmodel.Element) bool {
		path = append(path, e.Name)
		defer func() { path = path[:len(path)-1] }()
		p := "/" + join(path)
		if e.ID == "" {
			if requireAll {
				verr = &ValidationError{Path: p, Msg: "element has no ID (Definition 2.1 requires one)"}
				return false
			}
		} else if first, dup := seen[e.ID]; dup {
			verr = &ValidationError{Path: p,
				Msg: fmt.Sprintf("duplicate ID %q (first used at %s)", e.ID, first)}
			return false
		} else {
			seen[e.ID] = p
		}
		for _, k := range e.Children {
			if !walk(k) {
				return false
			}
		}
		return true
	}
	walk(doc.Root)
	return verr
}

// ValidateFull combines structural validation (Definition 2.3/2.4) with
// the ID requirements of Appendix A.
func (d *DTD) ValidateFull(doc *xmlmodel.Document, requireIDs bool) error {
	if err := d.Validate(doc); err != nil {
		return err
	}
	return ValidateIDs(doc, requireIDs)
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "/"
		}
		out += p
	}
	return out
}
