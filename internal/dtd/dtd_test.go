package dtd

import (
	"strings"
	"testing"

	"repro/internal/regex"
	"repro/internal/xmlmodel"
)

// D1 is the paper's department DTD from Example 3.1.
const D1 = `<!DOCTYPE department [
  <!ELEMENT department (name, professor+, gradStudent+, course*)>
  <!ELEMENT professor (firstName, lastName, publication+, teaches)>
  <!ELEMENT gradStudent (firstName, lastName, publication+)>
  <!ELEMENT publication (title, author+, (journal|conference))>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT firstName (#PCDATA)>
  <!ELEMENT lastName (#PCDATA)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT journal (#PCDATA)>
  <!ELEMENT conference (#PCDATA)>
  <!ELEMENT course (#PCDATA)>
  <!ELEMENT teaches (#PCDATA)>
]>`

func parseD1(t *testing.T) *DTD {
	t.Helper()
	d, err := Parse(D1)
	if err != nil {
		t.Fatalf("Parse(D1): %v", err)
	}
	return d
}

func TestParseD1(t *testing.T) {
	d := parseD1(t)
	if d.Root != "department" {
		t.Errorf("Root = %q", d.Root)
	}
	if got := d.Types["department"].Model.String(); got != "name, professor+, gradStudent+, course*" {
		t.Errorf("department model = %q", got)
	}
	if got := d.Types["publication"].Model.String(); got != "title, author+, (journal | conference)" {
		t.Errorf("publication model = %q", got)
	}
	if !d.Types["name"].PCDATA {
		t.Error("name must be PCDATA")
	}
	if errs := d.Check(); len(errs) != 0 {
		t.Errorf("Check: %v", errs)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	d := parseD1(t)
	back, err := Parse(d.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, d.String())
	}
	if back.Root != d.Root || len(back.Types) != len(d.Types) {
		t.Fatalf("round trip changed the DTD")
	}
	for _, n := range d.Names() {
		if back.Types[n].String() != d.Types[n].String() {
			t.Errorf("type of %s changed: %s vs %s", n, d.Types[n], back.Types[n])
		}
	}
}

func TestParseVariants(t *testing.T) {
	d, err := Parse(`<!DOCTYPE r [
	  <!-- a comment -->
	  <!ELEMENT r (a*, b?)>
	  <!ELEMENT a EMPTY>
	  <!ELEMENT b ANY>
	  <!ATTLIST r id ID #IMPLIED>
	]>`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := d.Types["a"].Model.String(); got != "EMPTY" {
		t.Errorf("EMPTY spec parsed as %q", got)
	}
	// ANY expands over all declared names (Remark 1).
	if got := d.Types["b"].Model.String(); got != "(r | a | b)*" {
		t.Errorf("ANY expansion = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		`<!ELEMENT a (b)>`,                                   // no DOCTYPE
		`<!DOCTYPE r [ <!ELEMENT a (#PCDATA|b)*> ]>`,         // mixed content
		`<!DOCTYPE r [ <!ELEMENT a (b)> <!ELEMENT a (c)> ]>`, // duplicate
		`<!DOCTYPE r [ <!ELEMENT a (b,,c)> ]>`,               // bad model
		`<!DOCTYPE r [ <!ELEMENT a (b^1)> ]>`,                // tags are s-DTD only
		`<!DOCTYPE r [ <!WEIRD thing> ]>`,                    // unknown decl
		`<!DOCTYPE r [ <!ELEMENT a (b) ]>`,                   // unterminated
		`<!DOCTYPE [ <!ELEMENT a (b)> ]>`,                    // missing root
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestCheckFindsProblems(t *testing.T) {
	d := New("r")
	d.Declare("r", M(regex.MustParse("a, b")))
	d.Declare("a", PC())
	errs := d.Check()
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "undeclared name b") {
		t.Errorf("Check = %v", errs)
	}
	d2 := New("missing")
	if errs := d2.Check(); len(errs) != 1 {
		t.Errorf("Check = %v", errs)
	}
}

const validDoc = `<department>
  <name>CS</name>
  <professor>
    <firstName>Yannis</firstName><lastName>P</lastName>
    <publication><title>T1</title><author>A</author><journal>VLDBJ</journal></publication>
    <teaches>cse132</teaches>
  </professor>
  <gradStudent>
    <firstName>Pavel</firstName><lastName>V</lastName>
    <publication><title>T2</title><author>B</author><conference>ICDE</conference></publication>
  </gradStudent>
</department>`

func TestValidate(t *testing.T) {
	d := parseD1(t)
	doc, _, err := xmlmodel.Parse(validDoc)
	if err != nil {
		t.Fatalf("parse doc: %v", err)
	}
	if err := d.Validate(doc); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}
}

func TestValidateViolations(t *testing.T) {
	d := parseD1(t)
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"wrong root", `<professor><firstName>x</firstName><lastName>y</lastName><publication><title>t</title><author>a</author><journal>j</journal></publication><teaches>z</teaches></professor>`, "document type requires"},
		{"missing gradStudent", `<department><name>CS</name><professor><firstName>x</firstName><lastName>y</lastName><publication><title>t</title><author>a</author><journal>j</journal></publication><teaches>z</teaches></professor></department>`, "do not match content model"},
		{"undeclared element", `<department><name>CS</name><dean>who</dean></department>`, "do not match content model"},
		{"pcdata has children", `<department><name><x/></name></department>`, "do not match content model"},
		{"element content has text", `<department>just text</department>`, "has character content"},
	}
	for _, c := range cases {
		doc, _, err := xmlmodel.Parse(c.doc)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		err = d.Validate(doc)
		if err == nil {
			t.Errorf("%s: validation should fail", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestValidatePCDATAMismatchInsideTree(t *testing.T) {
	d := parseD1(t)
	// name declared PCDATA but given element content deeper in the tree:
	doc, _, err := xmlmodel.Parse(`<department><name>CS</name><professor><firstName>x</firstName><lastName>y</lastName><publication><title>t</title><author>a</author><journal><deep/></journal></publication><teaches>z</teaches></professor><gradStudent><firstName>p</firstName><lastName>v</lastName><publication><title>t</title><author>a</author><journal>j</journal></publication></gradStudent></department>`)
	if err != nil {
		t.Fatal(err)
	}
	verr := d.Validate(doc)
	if verr == nil || !strings.Contains(verr.Error(), "journal") {
		t.Errorf("want journal PCDATA violation, got %v", verr)
	}
}

func TestReachable(t *testing.T) {
	d := parseD1(t)
	r := d.Reachable()
	for _, n := range []string{"department", "professor", "publication", "journal"} {
		if !r[n] {
			t.Errorf("%s should be reachable", n)
		}
	}
	d.Declare("orphan", PC())
	if d.Reachable()["orphan"] {
		t.Error("orphan must not be reachable")
	}
}

func TestRealizable(t *testing.T) {
	d := New("r")
	d.Declare("r", M(regex.MustParse("a | loop")))
	d.Declare("a", PC())
	d.Declare("loop", M(regex.MustParse("loop")))    // no finite instance
	d.Declare("maybe", M(regex.MustParse("maybe?"))) // realizable via empty
	real := d.Realizable()
	if !real["r"] || !real["a"] || !real["maybe"] {
		t.Errorf("realizable = %v", real)
	}
	if real["loop"] {
		t.Error("loop is not realizable")
	}
}

func TestRealizableMutualRecursion(t *testing.T) {
	d := New("r")
	d.Declare("r", M(regex.MustParse("x")))
	d.Declare("x", M(regex.MustParse("y")))
	d.Declare("y", M(regex.MustParse("x")))
	real := d.Realizable()
	if real["x"] || real["y"] || real["r"] {
		t.Errorf("mutually recursive names must be unrealizable, got %v", real)
	}
}

func TestParseDocumentWithSubset(t *testing.T) {
	doc, d, err := ParseDocument(D1 + "\n" + validDoc)
	if err != nil {
		t.Fatalf("ParseDocument: %v", err)
	}
	if d == nil || d.Root != "department" {
		t.Fatalf("DTD not extracted")
	}
	if err := d.Validate(doc); err != nil {
		t.Errorf("Validate: %v", err)
	}
	s := MarshalDocument(doc, d, 2)
	doc2, d2, err := ParseDocument(s)
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, s)
	}
	if d2 == nil || !doc2.Root.Equal(doc.Root) {
		t.Error("MarshalDocument round trip mismatch")
	}
}

func TestDocTypeWithoutSubset(t *testing.T) {
	d, err := Parse(`<!DOCTYPE html>`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if d.Root != "html" || len(d.Types) != 0 {
		t.Errorf("got %v", d)
	}
}

func TestDeclareAndNamesOrder(t *testing.T) {
	d := New("r")
	d.Declare("r", M(regex.Eps()))
	d.Declare("b", PC())
	d.Declare("a", PC())
	got := d.Names()
	if len(got) != 3 || got[0] != "r" || got[1] != "b" || got[2] != "a" {
		t.Errorf("Names = %v, want declaration order", got)
	}
	// Re-declaration keeps position.
	d.Declare("b", M(regex.Eps()))
	if got := d.Names(); got[1] != "b" {
		t.Errorf("Names after redeclare = %v", got)
	}
}

func TestValidateCacheInvalidation(t *testing.T) {
	d := New("r")
	d.Declare("r", M(regex.MustParse("a")))
	d.Declare("a", PC())
	doc := &xmlmodel.Document{Root: xmlmodel.NewElement("r", xmlmodel.NewText("a", "x"))}
	if err := d.Validate(doc); err != nil {
		t.Fatalf("initial validate: %v", err)
	}
	d.Declare("r", M(regex.MustParse("a, a"))) // must invalidate DFA cache
	if err := d.Validate(doc); err == nil {
		t.Error("validation must see the new content model")
	}
}
