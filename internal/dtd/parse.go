package dtd

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/regex"
	"repro/internal/xmlmodel"
)

// Parse parses a DTD given as either a bare internal subset
// ("<!ELEMENT a (b, c)> ...") with the document type supplied separately
// via ParseSubset, or a full DOCTYPE declaration
// ("<!DOCTYPE root [ <!ELEMENT ...> ]>").
func Parse(input string) (*DTD, error) {
	s := strings.TrimSpace(input)
	if !strings.HasPrefix(s, "<!DOCTYPE") {
		return nil, fmt.Errorf("dtd: input does not start with <!DOCTYPE (use ParseSubset for bare element declarations)")
	}
	s = strings.TrimPrefix(s, "<!DOCTYPE")
	s = strings.TrimLeft(s, " \t\r\n")
	i := 0
	for i < len(s) && !strings.ContainsRune(" \t\r\n[>", rune(s[i])) {
		i++
	}
	root := s[:i]
	if root == "" {
		return nil, fmt.Errorf("dtd: missing document type name in DOCTYPE")
	}
	s = s[i:]
	open := strings.IndexByte(s, '[')
	if open < 0 {
		// DOCTYPE with no internal subset: an empty DTD.
		return New(root), nil
	}
	closeIdx := strings.LastIndexByte(s, ']')
	if closeIdx < open {
		return nil, fmt.Errorf("dtd: unterminated internal subset")
	}
	return ParseSubset(root, s[open+1:closeIdx])
}

// ParseSubset parses the internal subset of a DOCTYPE declaration: a
// sequence of <!ELEMENT name spec> declarations, where spec is EMPTY, ANY,
// (#PCDATA), or a content model. <!ATTLIST ...>, <!ENTITY ...>, <!NOTATION
// ...> declarations, processing instructions and comments are skipped,
// since attributes (other than ID) and entities are outside the paper's
// model (Section 2). ANY is expanded per Remark 1 as (n1 | ... | nk)* over
// all declared names, in a second pass.
func ParseSubset(root, subset string) (*DTD, error) {
	d := New(root)
	var anyNames []string
	rest := subset
	for {
		rest = skipSubsetMisc(rest)
		if rest == "" {
			break
		}
		if !strings.HasPrefix(rest, "<!") {
			return nil, fmt.Errorf("dtd: unexpected content in internal subset: %.40q", rest)
		}
		end := strings.IndexByte(rest, '>')
		if end < 0 {
			return nil, fmt.Errorf("dtd: unterminated declaration: %.40q", rest)
		}
		decl := rest[2:end]
		rest = rest[end+1:]
		fields := strings.Fields(decl)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "ELEMENT":
			if len(fields) < 3 {
				return nil, fmt.Errorf("dtd: malformed element declaration <!%s>", decl)
			}
			name := fields[1]
			if !isXMLName(name) {
				return nil, fmt.Errorf("dtd: %q is not a valid element name", name)
			}
			if _, dup := d.Types[name]; dup {
				return nil, fmt.Errorf("dtd: element %s declared twice", name)
			}
			spec := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(decl), "ELEMENT"))
			spec = strings.TrimSpace(strings.TrimPrefix(spec, name))
			t, isAny, err := parseSpec(name, spec)
			if err != nil {
				return nil, err
			}
			if isAny {
				anyNames = append(anyNames, name)
			}
			d.Declare(name, t)
		case "ATTLIST", "ENTITY", "NOTATION":
			// Outside the model; skipped deliberately.
		default:
			return nil, fmt.Errorf("dtd: unsupported declaration <!%s ...>", fields[0])
		}
	}
	// Expand ANY per Remark 1: the macro (n1 | ... | nk)* over all names.
	if len(anyNames) > 0 {
		alts := make([]regex.Expr, 0, len(d.Types))
		for _, n := range d.Names() {
			alts = append(alts, regex.Nm(n))
		}
		anyModel := regex.Rep(regex.Or(alts...))
		for _, n := range anyNames {
			d.Types[n] = M(anyModel)
		}
	}
	return d, nil
}

// parseSpec parses the content specification of an ELEMENT declaration.
func parseSpec(name, spec string) (Type, bool, error) {
	switch strings.TrimSpace(spec) {
	case "EMPTY":
		// The paper excludes EMPTY elements (Section 2, requirement 3); we
		// accept the declaration and model it as empty element content, the
		// closest representable type (see Appendix A's OEM analogy).
		return M(regex.Eps()), false, nil
	case "ANY":
		return Type{}, true, nil
	}
	s := strings.TrimSpace(spec)
	if strings.HasPrefix(s, "(") && strings.Contains(s, "#PCDATA") {
		inner := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(s, "("), ")"))
		if inner == "#PCDATA" {
			return PC(), false, nil
		}
		return Type{}, false, fmt.Errorf("dtd: element %s: mixed content %q is outside the model (Section 2)", name, spec)
	}
	e, err := regex.Parse(s)
	if err != nil {
		return Type{}, false, fmt.Errorf("dtd: element %s: %v", name, err)
	}
	for _, n := range regex.Names(e) {
		if n.Tag != 0 {
			return Type{}, false, fmt.Errorf("dtd: element %s: tagged name %s not allowed in a plain DTD", name, n)
		}
	}
	return M(e), false, nil
}

// isXMLName checks the element-name syntax the rest of the system uses
// (letters/underscore first; then letters, digits, '-', '.', ':').
func isXMLName(s string) bool {
	for i, r := range s {
		if unicode.IsLetter(r) || r == '_' {
			continue
		}
		if i > 0 && (unicode.IsDigit(r) || r == '-' || r == '.' || r == ':') {
			continue
		}
		return false
	}
	return s != ""
}

func skipSubsetMisc(s string) string {
	for {
		s = strings.TrimLeft(s, " \t\r\n")
		switch {
		case strings.HasPrefix(s, "<!--"):
			end := strings.Index(s, "-->")
			if end < 0 {
				return ""
			}
			s = s[end+3:]
		case strings.HasPrefix(s, "<?"):
			end := strings.Index(s, "?>")
			if end < 0 {
				return ""
			}
			s = s[end+2:]
		default:
			return s
		}
	}
}

// ParseDocument parses an XML document together with its internal-subset
// DTD, the common input form for the tools: a valid XML document per
// Definition 2.4. The returned DTD is nil when the document has no DOCTYPE.
func ParseDocument(input string) (*xmlmodel.Document, *DTD, error) {
	doc, dt, err := xmlmodel.Parse(input)
	if err != nil {
		return nil, nil, err
	}
	if dt == nil {
		return doc, nil, nil
	}
	d, err := ParseSubset(dt.Root, dt.Internal)
	if err != nil {
		return nil, nil, err
	}
	return doc, d, nil
}

// MarshalDocument serializes a document with its DTD inline as a DOCTYPE
// internal subset, producing a self-contained valid XML document.
func MarshalDocument(doc *xmlmodel.Document, d *DTD, indent int) string {
	var b strings.Builder
	if d != nil {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	b.WriteString(xmlmodel.MarshalElement(doc.Root, indent))
	return b.String()
}
