package dtd

import (
	"strings"
	"testing"

	"repro/internal/xmlmodel"
)

func TestValidateStreamAcceptsValidDoc(t *testing.T) {
	d := parseD1(t)
	if err := d.ValidateStream(validDoc); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}
}

func TestValidateStreamViolations(t *testing.T) {
	d := parseD1(t)
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"wrong root", `<professor><firstName>x</firstName></professor>`, "document type requires"},
		{"missing gradStudent", `<department><name>CS</name><professor><firstName>x</firstName><lastName>y</lastName><publication><title>t</title><author>a</author><journal>j</journal></publication><teaches>z</teaches></professor></department>`, "do not match content model"},
		{"undeclared element", `<department><name>CS</name><dean>who</dean></department>`, "not declared"},
		{"pcdata has children", `<department><name><course>c</course></name></department>`, "has element content"},
		{"undeclared under pcdata", `<department><name><x/></name></department>`, "not declared"},
		{"element content has text", `<department>just text</department>`, "has character content"},
		{"empty pcdata element", `<department><name></name></department>`, "(#PCDATA)"},
		{"malformed", `<department><name>CS</name>`, "unterminated"},
	}
	for _, c := range cases {
		err := d.ValidateStream(c.doc)
		if err == nil {
			t.Errorf("%s: ValidateStream should fail", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestValidateStreamAgreesWithTree pins accept/reject parity with the
// tree pipeline (Parse + Validate) on the shapes where the two paths take
// different code: early DFA rejection vs dead-state transit, wrong-root,
// whitespace handling, malformed input. The exhaustive version of this
// check is the corpus property test in stream_property_test.go.
func TestValidateStreamAgreesWithTree(t *testing.T) {
	d := parseD1(t)
	docs := []string{
		validDoc,
		`<department><name>CS</name></department>`,
		`<department><course>c1</course><name>CS</name></department>`, // order violation
		`<wrong/>`,
		`<department>
			<name> spaced </name>
		</department>`,
		`<department><name>&#67;&#83;</name></department>`, // entity text
		strings.ReplaceAll(validDoc, "</department>", ""),  // truncated
	}
	for _, src := range docs {
		var treeErr error
		doc, _, perr := xmlmodel.Parse(src)
		if perr != nil {
			treeErr = perr
		} else {
			treeErr = d.Validate(doc)
		}
		streamErr := d.ValidateStream(src)
		if (treeErr == nil) != (streamErr == nil) {
			t.Errorf("disagreement on %.60q: tree=%v stream=%v", src, treeErr, streamErr)
		}
	}
}

func TestStreamValidationStatsAdvance(t *testing.T) {
	d := parseD1(t)
	before := StreamValidationStats()
	if err := d.ValidateStream(validDoc); err != nil {
		t.Fatal(err)
	}
	after := StreamValidationStats()
	if after.Documents != before.Documents+1 {
		t.Errorf("Documents %d -> %d, want +1", before.Documents, after.Documents)
	}
	if after.Bytes != before.Bytes+int64(len(validDoc)) {
		t.Errorf("Bytes advanced by %d, want %d", after.Bytes-before.Bytes, len(validDoc))
	}
	if after.Events <= before.Events {
		t.Errorf("Events did not advance: %d -> %d", before.Events, after.Events)
	}
}
