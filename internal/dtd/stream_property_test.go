// Corpus-scale properties of the streaming validator, in an external test
// package because they draw documents from internal/gen (which imports
// dtd). The property under test is the contract ValidateStream documents:
// it accepts exactly the documents the tree pipeline (Parse + Validate)
// accepts — over generated valid corpora, over seeded byte-level
// mutations of them, and over documents an order of magnitude larger than
// anything the unit tests touch — with an allocation count independent of
// document size.
package dtd_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/xmlmodel"
)

// propertyDTDs exercises the content-model shapes that stress the DFA
// walk differently: sequencing with choice (the paper's D1), recursion
// (deep stacks), and mutual recursion with optionality.
var propertyDTDs = []struct {
	name string
	text string
}{
	{"department", `<!DOCTYPE department [
	  <!ELEMENT department (name, professor+, gradStudent+, course*)>
	  <!ELEMENT professor (firstName, lastName, publication+, teaches)>
	  <!ELEMENT gradStudent (firstName, lastName, publication+)>
	  <!ELEMENT publication (title, author+, (journal|conference))>
	  <!ELEMENT name (#PCDATA)> <!ELEMENT firstName (#PCDATA)>
	  <!ELEMENT lastName (#PCDATA)> <!ELEMENT title (#PCDATA)>
	  <!ELEMENT author (#PCDATA)> <!ELEMENT journal (#PCDATA)>
	  <!ELEMENT conference (#PCDATA)> <!ELEMENT course (#PCDATA)>
	  <!ELEMENT teaches (#PCDATA)>
	]>`},
	{"recursive", `<!DOCTYPE section [
	  <!ELEMENT section (prolog, section*, conclusion)>
	  <!ELEMENT prolog (#PCDATA)> <!ELEMENT conclusion (#PCDATA)>
	]>`},
	{"mutual", `<!DOCTYPE a [
	  <!ELEMENT a (b | leaf)>
	  <!ELEMENT b (a, a?)>
	  <!ELEMENT leaf (#PCDATA)>
	]>`},
}

// treeVerdict runs the tree pipeline on a document text.
func treeVerdict(d *dtd.DTD, src string) error {
	doc, _, err := xmlmodel.Parse(src)
	if err != nil {
		return err
	}
	return d.Validate(doc)
}

// TestStreamTreeAgreementOnCorpora checks the positive half of the
// property: every generated-valid document is stream-accepted.
func TestStreamTreeAgreementOnCorpora(t *testing.T) {
	for _, pd := range propertyDTDs {
		d, err := dtd.Parse(pd.text)
		if err != nil {
			t.Fatalf("%s: %v", pd.name, err)
		}
		g, err := gen.New(d, gen.Options{Seed: 11, MaxDepth: 8})
		if err != nil {
			t.Fatalf("%s: %v", pd.name, err)
		}
		for i, doc := range g.Corpus(150) {
			src := xmlmodel.MarshalElement(doc.Root, 1)
			if terr := treeVerdict(d, src); terr != nil {
				t.Fatalf("%s doc %d: tree pipeline rejected a generated document: %v", pd.name, i, terr)
			}
			if serr := d.ValidateStream(src); serr != nil {
				t.Errorf("%s doc %d: stream rejected what tree accepts: %v", pd.name, i, serr)
			}
		}
	}
}

// TestStreamTreeAgreementUnderMutation checks the whole accept/reject
// frontier: seeded byte substitutions, deletions and truncations of valid
// documents produce a mix of still-valid, invalid and malformed texts,
// and on every one the two pipelines must agree on the verdict (not the
// message — the scan reports the first violation in document order, the
// tree walk the first in preorder).
func TestStreamTreeAgreementUnderMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	alphabet := "abcdefghij<>/& ;#x01"
	for _, pd := range propertyDTDs {
		d, err := dtd.Parse(pd.text)
		if err != nil {
			t.Fatalf("%s: %v", pd.name, err)
		}
		g, err := gen.New(d, gen.Options{Seed: 29, MaxDepth: 7})
		if err != nil {
			t.Fatalf("%s: %v", pd.name, err)
		}
		disagreements := 0
		for _, doc := range g.Corpus(40) {
			src := xmlmodel.MarshalElement(doc.Root, 0)
			for m := 0; m < 25; m++ {
				mut := mutate(rng, src, alphabet)
				terr := treeVerdict(d, mut)
				serr := d.ValidateStream(mut)
				if (terr == nil) != (serr == nil) {
					disagreements++
					if disagreements <= 5 {
						t.Errorf("%s: disagreement on %.80q...: tree=%v stream=%v", pd.name, mut, terr, serr)
					}
				}
			}
		}
		if disagreements > 5 {
			t.Errorf("%s: %d disagreements total", pd.name, disagreements)
		}
	}
}

// mutate applies one random byte-level edit: substitution, deletion,
// insertion or truncation.
func mutate(rng *rand.Rand, src, alphabet string) string {
	if len(src) == 0 {
		return src
	}
	pos := rng.Intn(len(src))
	switch rng.Intn(4) {
	case 0: // substitute
		return src[:pos] + string(alphabet[rng.Intn(len(alphabet))]) + src[pos+1:]
	case 1: // delete
		return src[:pos] + src[pos+1:]
	case 2: // insert
		return src[:pos] + string(alphabet[rng.Intn(len(alphabet))]) + src[pos:]
	default: // truncate
		return src[:pos]
	}
}

// largeDoc builds a department document with n professor/gradStudent
// pairs — hundreds of kilobytes at n=2000, an order of magnitude beyond
// any unit-test fixture — valid under the paper's D1.
func largeDoc(n int) string {
	var b strings.Builder
	b.WriteString("<department><name>CS</name>")
	for i := 0; i < n; i++ {
		b.WriteString("<professor><firstName>x</firstName><lastName>y</lastName>" +
			"<publication><title>t</title><author>a</author><journal>j</journal></publication>" +
			"<teaches>z</teaches></professor>")
	}
	for i := 0; i < n; i++ {
		b.WriteString("<gradStudent><firstName>p</firstName><lastName>q</lastName>" +
			"<publication><title>t</title><author>a</author><conference>c</conference></publication>" +
			"</gradStudent>")
	}
	b.WriteString("</department>")
	return b.String()
}

// TestValidateStreamAllocsIndependentOfSize is the O(depth) memory claim
// as an executable assertion: a document 100× larger must not cost more
// allocations per validation (the per-call budget is the frame stack, the
// per-name memo and the scanner — none of which scale with length).
func TestValidateStreamAllocsIndependentOfSize(t *testing.T) {
	d, err := dtd.Parse(propertyDTDs[0].text)
	if err != nil {
		t.Fatal(err)
	}
	small, big := largeDoc(20), largeDoc(2000)
	if len(big) < 10*len(small) {
		t.Fatalf("big doc (%d bytes) is not ≥10× small (%d bytes)", len(big), len(small))
	}
	measure := func(src string) float64 {
		if err := d.ValidateStream(src); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(20, func() {
			if err := d.ValidateStream(src); err != nil {
				t.Fatal(err)
			}
		})
	}
	smallAllocs, bigAllocs := measure(small), measure(big)
	// Identical budgets modulo map-growth jitter: two allocations of slack.
	if bigAllocs > smallAllocs+2 {
		t.Errorf("allocs grew with document size: %d bytes -> %.1f allocs, %d bytes -> %.1f allocs",
			len(small), smallAllocs, len(big), bigAllocs)
	}
}

// BenchmarkValidateDocCold is the tree pipeline (parse into a tree, then
// validate it) on a multi-hundred-KB document; BenchmarkValidateDocWarm
// is the streaming validator on the same text. benchjson pairs them and
// reports the speedup in BENCH_stream.json (make bench-stream).
func BenchmarkValidateDocCold(b *testing.B) {
	d, err := dtd.Parse(propertyDTDs[0].text)
	if err != nil {
		b.Fatal(err)
	}
	src := largeDoc(2000)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc, _, err := xmlmodel.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Validate(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidateDocWarm(b *testing.B) {
	d, err := dtd.Parse(propertyDTDs[0].text)
	if err != nil {
		b.Fatal(err)
	}
	src := largeDoc(2000)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.ValidateStream(src); err != nil {
			b.Fatal(err)
		}
	}
}
