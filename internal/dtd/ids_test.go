package dtd

import (
	"strings"
	"testing"

	"repro/internal/regex"
	"repro/internal/xmlmodel"
)

func TestValidateIDs(t *testing.T) {
	mk := func(s string) *xmlmodel.Document {
		doc, _, err := xmlmodel.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		return doc
	}
	if err := ValidateIDs(mk(`<a id="1"><b id="2"/><b id="3"/></a>`), true); err != nil {
		t.Errorf("unique ids: %v", err)
	}
	err := ValidateIDs(mk(`<a id="1"><b id="2"/><b id="2"/></a>`), false)
	if err == nil || !strings.Contains(err.Error(), `duplicate ID "2"`) {
		t.Errorf("duplicate: %v", err)
	}
	if err := ValidateIDs(mk(`<a id="1"><b/></a>`), false); err != nil {
		t.Errorf("missing id tolerated by default: %v", err)
	}
	if err := ValidateIDs(mk(`<a id="1"><b/></a>`), true); err == nil {
		t.Error("requireAll must reject missing ids")
	}
	if err := ValidateIDs(&xmlmodel.Document{}, false); err == nil {
		t.Error("empty document")
	}
}

func TestValidateFull(t *testing.T) {
	d := New("a")
	d.Declare("a", M(regex.MustParse("b, b")))
	d.Declare("b", PC())
	doc, _, _ := xmlmodel.Parse(`<a id="x"><b id="y">1</b><b id="y">2</b></a>`)
	if err := d.ValidateFull(doc, false); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("ValidateFull = %v", err)
	}
	good, _, _ := xmlmodel.Parse(`<a id="x"><b id="y">1</b><b id="z">2</b></a>`)
	if err := d.ValidateFull(good, true); err != nil {
		t.Errorf("ValidateFull = %v", err)
	}
	// Structural violation reported before ID issues.
	bad, _, _ := xmlmodel.Parse(`<a id="x"><b id="y">1</b></a>`)
	if err := d.ValidateFull(bad, false); err == nil || !strings.Contains(err.Error(), "content model") {
		t.Errorf("ValidateFull = %v", err)
	}
}
