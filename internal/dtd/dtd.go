// Package dtd implements Document Type Definitions as formalized in
// Section 2 of the paper: a DTD is a set {⟨n : type(n)⟩} where each type is
// either a regular expression over element names or PCDATA
// (Definition 2.2), together with a document type (root name,
// Definition 2.4). The package provides parsing of the standard
// <!DOCTYPE ... [ <!ELEMENT ...> ]> syntax, validation of documents
// against a DTD (Definition 2.3), reachability and realizability analyses,
// and serialization.
//
// Realizability matters because a DTD may declare names that no finite
// document can instantiate (e.g. <!ELEMENT loop (loop)>); the tightness
// decision procedure in package tightness must ignore such names, and the
// document generator must avoid them.
package dtd

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/automata"
	"repro/internal/regex"
	"repro/internal/xmlmodel"
)

// Type is a single element type declaration: PCDATA or a content model.
type Type struct {
	// PCDATA marks character content; Model is nil in that case.
	PCDATA bool
	// Model is the content model, a regular expression over names.
	Model regex.Expr
}

// String renders the type in content-model syntax.
func (t Type) String() string {
	if t.PCDATA {
		return "(#PCDATA)"
	}
	return "(" + t.Model.String() + ")"
}

// PC is the PCDATA type constant.
func PC() Type { return Type{PCDATA: true} }

// M wraps a content model into a Type.
func M(e regex.Expr) Type { return Type{Model: e} }

// DTD is Definition 2.2 plus the document type of Definition 2.4.
type DTD struct {
	// Root is the document type d_root: the required name of the root
	// element of any document valid under this DTD.
	Root string
	// Types maps each declared name to its type.
	Types map[string]Type

	// order preserves declaration order for deterministic serialization.
	order []string
}

// New returns an empty DTD with the given document type.
func New(root string) *DTD {
	return &DTD{Root: root, Types: map[string]Type{}}
}

// Declare adds or replaces the type of a name, keeping declaration order.
func (d *DTD) Declare(name string, t Type) {
	if _, exists := d.Types[name]; !exists {
		d.order = append(d.order, name)
	}
	d.Types[name] = t
}

// Names returns the declared names in declaration order. Mutating the
// result does not affect the DTD. When the order must be rebuilt (Types
// populated directly), the document type sorts first, then alphabetically.
func (d *DTD) Names() []string {
	if len(d.order) != len(d.Types) {
		d.order = d.order[:0]
		for n := range d.Types {
			d.order = append(d.order, n)
		}
		sort.Slice(d.order, func(i, j int) bool {
			a, b := d.order[i], d.order[j]
			if (a == d.Root) != (b == d.Root) {
				return a == d.Root
			}
			return a < b
		})
	}
	return append([]string(nil), d.order...)
}

// Clone returns a deep-enough copy (expressions are immutable and shared).
func (d *DTD) Clone() *DTD {
	c := New(d.Root)
	for _, n := range d.Names() {
		c.Declare(n, d.Types[n])
	}
	return c
}

// String serializes the DTD as a DOCTYPE declaration with internal subset.
func (d *DTD) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "<!DOCTYPE %s [\n", d.Root)
	for _, n := range d.Names() {
		fmt.Fprintf(&b, "  <!ELEMENT %s %s>\n", n, d.Types[n])
	}
	b.WriteString("]>")
	return b.String()
}

// dfa returns the compiled automaton for name's content model, backed by
// the process-wide compiled-automata cache. Unlike the per-DTD map it
// replaced, the shared cache is concurrency-safe, so concurrent validation
// against the same DTD value needs no cloning; it also survives Declare
// (keys are content models, not names).
func (d *DTD) dfa(name string) *automata.DFA {
	return automata.Compiled(d.Types[name].Model)
}

// ValidationError reports why an element fails Definition 2.3.
type ValidationError struct {
	Path string // slash path of element names from the root
	Msg  string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("dtd: %s: %s", e.Path, e.Msg)
}

// Validate checks the document against the DTD: the root element must bear
// the document type name, and every element must satisfy its declaration
// (Definitions 2.3 and 2.4). The first violation found (preorder) is
// returned; nil means the document is valid.
func (d *DTD) Validate(doc *Document) error {
	if doc == nil || doc.Root == nil {
		return &ValidationError{Path: "/", Msg: "empty document"}
	}
	if doc.Root.Name != d.Root {
		return &ValidationError{Path: "/" + doc.Root.Name,
			Msg: fmt.Sprintf("root element is %s, document type requires %s", doc.Root.Name, d.Root)}
	}
	return d.ValidateElement(doc.Root)
}

// ValidateElement checks the subtree rooted at e against the DTD without
// constraining e to be the document type.
func (d *DTD) ValidateElement(e *Element) error {
	return d.validate(e, "/"+e.Name)
}

func (d *DTD) validate(e *Element, path string) error {
	t, declared := d.Types[e.Name]
	if !declared {
		return &ValidationError{Path: path, Msg: fmt.Sprintf("element name %s is not declared", e.Name)}
	}
	if t.PCDATA {
		if !e.IsText {
			return &ValidationError{Path: path,
				Msg: fmt.Sprintf("%s is declared (#PCDATA) but has element content", e.Name)}
		}
		return nil
	}
	if e.IsText {
		return &ValidationError{Path: path,
			Msg: fmt.Sprintf("%s has character content but is declared %s", e.Name, t)}
	}
	word := make([]regex.Name, len(e.Children))
	for i, k := range e.Children {
		word[i] = regex.N(k.Name)
	}
	if !d.dfa(e.Name).Match(word) {
		return &ValidationError{Path: path,
			Msg: fmt.Sprintf("children %v do not match content model %s", wordString(word), t.Model)}
	}
	for i, k := range e.Children {
		if err := d.validate(k, fmt.Sprintf("%s/%s[%d]", path, k.Name, i)); err != nil {
			return err
		}
	}
	return nil
}

func wordString(w []regex.Name) string {
	parts := make([]string, len(w))
	for i, n := range w {
		parts[i] = n.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Equivalent reports whether two DTDs describe the same document
// language: the same document type (root name), the same set of element
// names reachable from it, and, for every reachable name, content models
// accepting the same child sequences (decided on the compiled minimal
// DFAs, so syntactically different but language-equal models — (a|b) vs
// (b|a) — compare equal). Declarations unreachable from the root are
// ignored: no valid document can instantiate them, so they do not change
// the language. Replica registration (mediator.NewReplicaSet) uses this
// to verify that the replicas of one source are interchangeable.
func Equivalent(a, b *DTD) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Root != b.Root {
		return false
	}
	ra, rb := a.Reachable(), b.Reachable()
	if len(ra) != len(rb) {
		return false
	}
	for name := range ra {
		if !rb[name] {
			return false
		}
		ta, tb := a.Types[name], b.Types[name]
		if ta.PCDATA != tb.PCDATA {
			return false
		}
		if ta.PCDATA {
			continue
		}
		if (ta.Model == nil) != (tb.Model == nil) {
			return false
		}
		if ta.Model != nil && !automata.Equivalent(ta.Model, tb.Model) {
			return false
		}
	}
	return true
}

// Reachable returns the set of names reachable from the document type
// through content models (including the root itself, when declared).
func (d *DTD) Reachable() map[string]bool {
	return d.reachableFrom(d.Root)
}

func (d *DTD) reachableFrom(start string) map[string]bool {
	out := map[string]bool{}
	if _, ok := d.Types[start]; !ok {
		return out
	}
	out[start] = true
	work := []string{start}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		t := d.Types[n]
		if t.PCDATA {
			continue
		}
		for _, m := range regex.Names(t.Model) {
			if !out[m.Base] {
				if _, declared := d.Types[m.Base]; declared {
					out[m.Base] = true
					work = append(work, m.Base)
				}
			}
		}
	}
	return out
}

// Realizable returns the set of names n for which at least one finite
// document with root n satisfies the DTD. A PCDATA name is realizable; a
// name with a content model is realizable iff its model accepts some word
// over realizable names. Undeclared names are never realizable.
func (d *DTD) Realizable() map[string]bool {
	real := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for _, n := range d.Names() {
			if real[n] {
				continue
			}
			t := d.Types[n]
			if t.PCDATA {
				real[n] = true
				changed = true
				continue
			}
			if realizableExpr(t.Model, func(m regex.Name) bool { return real[m.Base] }) {
				real[n] = true
				changed = true
			}
		}
	}
	return real
}

// realizableExpr reports whether e accepts some word using only names
// satisfying ok — the emptiness question L(e) ∩ ok* ≠ ∅, decided
// syntactically on the expression. It deliberately avoids the automata
// path: realizability runs before any budget applies, and a content model
// engineered to blow up subset construction (the budgeted-inference
// threat model) must not stall it.
func realizableExpr(e regex.Expr, ok func(regex.Name) bool) bool {
	switch v := e.(type) {
	case regex.Empty:
		return true
	case regex.Fail:
		return false
	case regex.Atom:
		return ok(v.Name)
	case regex.Star, regex.Opt:
		return true // ε is always available
	case regex.Plus:
		return realizableExpr(v.Sub, ok)
	case regex.Concat:
		for _, it := range v.Items {
			if !realizableExpr(it, ok) {
				return false
			}
		}
		return true
	case regex.Alt:
		for _, it := range v.Items {
			if realizableExpr(it, ok) {
				return true
			}
		}
		return false
	}
	panic(fmt.Sprintf("dtd: unknown regex node %T", e))
}

// Check verifies internal consistency: the document type is declared, and
// every name referenced by a content model is declared. It returns all
// problems found.
func (d *DTD) Check() []error {
	var errs []error
	if _, ok := d.Types[d.Root]; !ok {
		errs = append(errs, fmt.Errorf("dtd: document type %s is not declared", d.Root))
	}
	for _, n := range d.Names() {
		t := d.Types[n]
		if t.PCDATA {
			continue
		}
		if t.Model == nil {
			errs = append(errs, fmt.Errorf("dtd: element %s has neither PCDATA nor a content model", n))
			continue
		}
		for _, m := range regex.Names(t.Model) {
			if m.Tag != 0 {
				errs = append(errs, fmt.Errorf("dtd: element %s references tagged name %s; tags belong to s-DTDs", n, m))
			}
			if _, ok := d.Types[m.Base]; !ok {
				errs = append(errs, fmt.Errorf("dtd: element %s references undeclared name %s", n, m.Base))
			}
		}
	}
	return errs
}

// Document and Element aliases keep the package's API self-contained.
type (
	// Document is re-exported from xmlmodel for convenience.
	Document = xmlmodel.Document
	// Element is re-exported from xmlmodel for convenience.
	Element = xmlmodel.Element
)
