package dtd

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/automata"
	"repro/internal/regex"
	"repro/internal/xmlmodel"
)

// StreamStats is a snapshot of the process-wide streaming-validation
// counters: documents validated, scanner events consumed, input bytes
// covered. internal/serve surfaces them at /metrics.
type StreamStats struct {
	Documents int64 `json:"documents"`
	Events    int64 `json:"events"`
	Bytes     int64 `json:"bytes"`
}

var streamDocuments, streamEvents, streamBytes atomic.Int64

// StreamValidationStats returns the current streaming-validation counters.
func StreamValidationStats() StreamStats {
	return StreamStats{
		Documents: streamDocuments.Load(),
		Events:    streamEvents.Load(),
		Bytes:     streamBytes.Load(),
	}
}

// ValidateStream validates a document text against the DTD without
// building a tree: a SAX-style scan (xmlmodel.Scanner) drives the
// compiled content-model DFAs directly, one explicit stack frame per open
// element. Memory is O(depth) and the allocation count is independent of
// document size — the per-call costs are the frame stack and one
// automata-cache lookup per distinct element name — so arbitrarily large
// source payloads validate without being materialized.
//
// It accepts exactly the documents that Parse plus Validate accept, and
// rejects exactly the ones they reject (property-tested); only error
// positions and messages may differ, because the scan reports the first
// violation in document order while the tree validator reports the first
// in preorder.
func (d *DTD) ValidateStream(input string) error {
	streamDocuments.Add(1)
	streamBytes.Add(int64(len(input)))
	v := streamValidator{d: d, types: make(map[string]streamType, len(d.Types))}
	sc := xmlmodel.NewScanner(input)
	events := int64(0)
	err := func() error {
		for {
			ev, err := sc.Next()
			if err != nil {
				return err
			}
			events++
			switch ev.Kind {
			case xmlmodel.EventStart:
				if err := v.open(ev.Name); err != nil {
					return err
				}
			case xmlmodel.EventText:
				if err := v.text(); err != nil {
					return err
				}
			case xmlmodel.EventEnd:
				if err := v.close(); err != nil {
					return err
				}
			case xmlmodel.EventEOF:
				return nil
			}
		}
	}()
	streamEvents.Add(events)
	return err
}

// streamType is the per-name validation plan: PCDATA or a compiled DFA.
type streamType struct {
	pcdata bool
	dfa    *automata.DFA
	t      Type
}

// streamFrame is the state of one open element: its DFA state advances as
// children open, and acceptance is checked when the element closes.
type streamFrame struct {
	name     string
	idx      int // position among the parent's children (error paths only)
	st       streamType
	state    int
	sawText  bool
	children int
}

type streamValidator struct {
	d     *DTD
	types map[string]streamType
	stack []streamFrame
}

// typeOf resolves the validation plan for a name, memoized per call so the
// hot loop never re-derives an automata-cache key: the first occurrence of
// a name costs one (process-wide cached) Compiled lookup, every later one
// is a map read. Compilation stays lazy — a declared-but-unused
// pathological content model costs nothing, exactly as in tree validation.
func (v *streamValidator) typeOf(name string) (streamType, bool) {
	if st, ok := v.types[name]; ok {
		return st, true
	}
	t, ok := v.d.Types[name]
	if !ok {
		return streamType{}, false
	}
	st := streamType{pcdata: t.PCDATA, t: t}
	if !t.PCDATA {
		st.dfa = automata.Compiled(t.Model)
	}
	v.types[name] = st
	return st, true
}

func (v *streamValidator) open(name string) error {
	if len(v.stack) == 0 && name != v.d.Root {
		return &ValidationError{Path: "/" + name,
			Msg: fmt.Sprintf("root element is %s, document type requires %s", name, v.d.Root)}
	}
	st, declared := v.typeOf(name)
	idx := 0
	if len(v.stack) > 0 {
		parent := &v.stack[len(v.stack)-1]
		idx = parent.children
		parent.children++
		if !declared {
			return &ValidationError{Path: v.childPath(name, idx),
				Msg: fmt.Sprintf("element name %s is not declared", name)}
		}
		if parent.st.pcdata {
			return &ValidationError{Path: v.path(),
				Msg: fmt.Sprintf("%s is declared (#PCDATA) but has element content", parent.name)}
		}
		// A child name outside the model's alphabet can never match; a name
		// inside it advances the DFA, and acceptance is decided at close.
		next, ok := parent.st.dfa.Step(parent.state, regex.N(name))
		if !ok {
			return &ValidationError{Path: v.path(),
				Msg: fmt.Sprintf("child %s (index %d) cannot occur under content model %s", name, idx, parent.st.t.Model)}
		}
		parent.state = next
	} else if !declared {
		return &ValidationError{Path: "/" + name,
			Msg: fmt.Sprintf("element name %s is not declared", name)}
	}
	f := streamFrame{name: name, idx: idx, st: st}
	if !st.pcdata {
		f.state = st.dfa.Start
	}
	v.stack = append(v.stack, f)
	return nil
}

func (v *streamValidator) text() error {
	top := &v.stack[len(v.stack)-1]
	if !top.st.pcdata {
		return &ValidationError{Path: v.path(),
			Msg: fmt.Sprintf("%s has character content but is declared %s", top.name, top.st.t)}
	}
	top.sawText = true
	return nil
}

func (v *streamValidator) close() error {
	top := &v.stack[len(v.stack)-1]
	if top.st.pcdata {
		if !top.sawText {
			return &ValidationError{Path: v.path(),
				Msg: fmt.Sprintf("%s is declared (#PCDATA) but has element content", top.name)}
		}
	} else if !top.st.dfa.Accept[top.state] {
		return &ValidationError{Path: v.path(),
			Msg: fmt.Sprintf("children do not match content model %s", top.st.t.Model)}
	}
	v.stack = v.stack[:len(v.stack)-1]
	return nil
}

// path renders the slash path of the current top frame in the tree
// validator's style (/root/child[0]/grand[2]); only error paths pay for it.
func (v *streamValidator) path() string {
	var b strings.Builder
	for i, f := range v.stack {
		if i == 0 {
			b.WriteByte('/')
			b.WriteString(f.name)
			continue
		}
		fmt.Fprintf(&b, "/%s[%d]", f.name, f.idx)
	}
	return b.String()
}

func (v *streamValidator) childPath(name string, idx int) string {
	if len(v.stack) == 0 {
		return "/" + name
	}
	return fmt.Sprintf("%s/%s[%d]", v.path(), name, idx)
}
