package mix_test

import (
	"strings"
	"testing"

	mix "repro"
)

// Native fuzz targets for every textual front end. Under plain `go test`
// these run their seed corpora; `go test -fuzz=FuzzParseDocument ./` etc.
// explores further. The invariants: parsers never panic, and anything that
// parses must re-parse from its own rendering.

func FuzzParseDocument(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<a id="1"><b>text</b></a>`,
		`<?xml version="1.0"?><!DOCTYPE a [ <!ELEMENT a (b*)> <!ELEMENT b (#PCDATA)> ]><a><b>x</b></a>`,
		`<a>&lt;&amp;&gt;&#65;</a>`,
		`<a><b/><b></b></a>`,
		`<!-- c --><a/>`,
		`<a`, `<a></b>`, `<a>mixed<b/></a>`, ``,
		d1Bench + "\n<department></department>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		doc, d, err := mix.ParseDocument(input)
		if err != nil {
			return
		}
		// Round trip: rendering must re-parse to an equal document.
		out := mix.MarshalDocument(doc, d, 2)
		doc2, _, err := mix.ParseDocument(out)
		if err != nil {
			t.Fatalf("re-parse failed: %v\noriginal: %q\nrendered: %q", err, input, out)
		}
		if !doc2.Root.Equal(doc.Root) {
			// Empty PCDATA collapses to empty element content in XML; that
			// single lossy case is documented (see xmlmodel tests).
			if !strings.Contains(out, "></") {
				t.Fatalf("round trip changed document\noriginal: %q\nrendered: %q", input, out)
			}
		}
	})
}

func FuzzParseDTD(f *testing.F) {
	seeds := []string{
		d1Bench,
		`<!DOCTYPE r [ <!ELEMENT r EMPTY> ]>`,
		`<!DOCTYPE r [ <!ELEMENT r ANY> <!ELEMENT s (#PCDATA)> ]>`,
		`<!DOCTYPE r>`,
		`<!DOCTYPE r [ <!ATTLIST r id ID #REQUIRED> <!ELEMENT r (#PCDATA)> ]>`,
		`<!DOCTYPE r [ <!ELEMENT r (a,,b)> ]>`,
		`<!DOCTYPE r [`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		d, err := mix.ParseDTD(input)
		if err != nil {
			return
		}
		back, err := mix.ParseDTD(d.String())
		if err != nil {
			t.Fatalf("re-parse failed: %v\nrendered:\n%s", err, d)
		}
		if back.Root != d.Root || len(back.Types) != len(d.Types) {
			t.Fatalf("round trip changed the DTD\noriginal: %q", input)
		}
	})
}

func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		q2Bench,
		`SELECT X WHERE X:<a/>`,
		`v = SELECT X WHERE <a> X:<b|c id=I> text </> </a> AND I != J`,
		`select x where x:<a/>`,
		`SELECT X WHERE <s*> X:<p/> </>`,
		`SELECT`, `WHERE`, ``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := mix.ParseQuery(input)
		if err != nil {
			return
		}
		back, err := mix.ParseQuery(q.String())
		if err != nil {
			t.Fatalf("re-parse failed: %v\nrendered:\n%s", err, q)
		}
		if back.String() != q.String() {
			t.Fatalf("printer not a fixed point\noriginal: %q\nfirst: %s\nsecond: %s", input, q, back)
		}
	})
}

func FuzzParseContentModel(f *testing.F) {
	seeds := []string{
		"a, b+, (c|d)*", "a^1, a^2?", "EMPTY", "FAIL", "((a))", "a|", "", "a,,b",
		// Regression shapes for the compiled-automata cache: deep nesting
		// (canonical keys must frame correctly at depth), duplicate names
		// (Glushkov positions must stay distinct), FAIL buried in operators
		// (empty alternations must simplify without changing the language),
		// and stars over nullable bodies (minimization edge cases).
		"((((((a))))))*",
		"(((a|b)|(a|b))|((a|b)|(a|b)))+",
		"a, a, a?, a*, a+",
		"(a|a|a)*",
		"(FAIL|a), (b|FAIL)?",
		"(FAIL)*",
		"(a?, b?)*",
		"((a*)*)*",
		"a^1, a^2, (a^1|a^2)*",
		"((a, b)|(a, c))*, a?",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		e, err := mix.ParseContentModel(input)
		if err != nil {
			return
		}
		back, err := mix.ParseContentModel(e.String())
		if err != nil {
			t.Fatalf("re-parse failed: %v (rendered %q)", err, e)
		}
		if back.String() != e.String() {
			t.Fatalf("printer not a fixed point: %q -> %q -> %q", input, e, back)
		}
	})
}
