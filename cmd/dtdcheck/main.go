// Command dtdcheck validates XML documents against DTDs and compares DTDs
// under the paper's tightness order (Definition 3.2).
//
// Validate a document (DTD from its DOCTYPE subset, or -dtd):
//
//	dtdcheck -doc data.xml [-dtd schema.dtd]
//
// Compare two DTDs:
//
//	dtdcheck -tighter a.dtd b.dtd     # is L(a) ⊆ L(b)?
//
// Exit status 1 reports invalidity / non-tightness, with an explanation on
// standard error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	mix "repro"
	"repro/internal/automata"
	"repro/internal/budgetflag"
	"repro/internal/obs"
)

func main() {
	docPath := flag.String("doc", "", "path to the XML document (default: stdin)")
	dtdPath := flag.String("dtd", "", "path to a DTD overriding the document's DOCTYPE")
	tighter := flag.Bool("tighter", false, "compare two DTD files given as arguments")
	outline := flag.Bool("outline", false, "print the DTD (from -dtd) as an annotated structure tree and exit")
	stats := flag.Bool("stats", false, "print compiled-automata cache counters to stderr on exit")
	traceRun := flag.Bool("trace", false, "with -tighter: dump a span tree of the comparison (budget counters) to stderr")
	limitsOf := budgetflag.Register(flag.CommandLine)
	flag.Parse()
	if *stats {
		exit = func(code int) { printCacheStats(); os.Exit(code) }
		defer printCacheStats()
	}

	if *outline {
		if *dtdPath == "" {
			fmt.Fprintln(os.Stderr, "dtdcheck: -outline requires -dtd")
			os.Exit(1)
		}
		d, err := readDTD(*dtdPath)
		if err != nil {
			fatal(err)
		}
		fmt.Print(mix.OutlineDTD(d))
		return
	}

	if *tighter {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "dtdcheck: -tighter needs exactly two DTD files")
			os.Exit(1)
		}
		a, err := readDTD(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		b, err := readDTD(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		var bud *mix.Budget
		if limits := limitsOf(); !limits.Unlimited() {
			// One budget covers the whole comparison (both directions):
			// tightness is a decision and cannot soundly degrade, so
			// exhaustion is reported as "undecided" with a distinct exit
			// status rather than a wrong answer.
			bud = mix.NewBudget(limits)
		}
		if *traceRun {
			// The comparison runs through budget charge sites, not through
			// a context, so the root span observes the budget directly; an
			// unlimited run gets a zero-limits budget that only counts.
			if bud == nil {
				bud = mix.NewBudget(mix.BudgetLimits{})
			}
			tracer := obs.NewTracer(1)
			_, root := tracer.StartRequest(context.Background(), "dtdcheck.tighter", "")
			bud.SetObserver(root)
			dump := func() {
				root.End()
				for _, ts := range tracer.Traces(1) {
					obs.WriteTrace(os.Stderr, ts)
				}
			}
			defer dump()
			prev := exit
			exit = func(code int) { dump(); prev(code) }
		}
		ab, wab, err := mix.TighterBudget(a, b, bud)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtdcheck: undecided within budget:", err)
			exit(3)
		}
		ba, _, err := mix.TighterBudget(b, a, bud)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtdcheck: undecided within budget:", err)
			exit(3)
		}
		switch {
		case ab && ba:
			fmt.Println("equivalent: the DTDs describe the same documents")
		case ab:
			fmt.Printf("%s is strictly tighter than %s\n", flag.Arg(0), flag.Arg(1))
		case ba:
			fmt.Printf("%s is strictly tighter than %s\n", flag.Arg(1), flag.Arg(0))
		default:
			fmt.Println("incomparable")
		}
		if !ab && wab != nil {
			fmt.Printf("witness against %s ⊆ %s: %s\n", flag.Arg(0), flag.Arg(1), wab)
			if doc, err := mix.WitnessDocument(a, b); err == nil && doc != nil {
				fmt.Println("counterexample document (valid under the first, invalid under the second):")
				fmt.Print(mix.MarshalDocument(doc, nil, 2))
			}
		}
		if !ab {
			exit(1)
		}
		return
	}

	var text []byte
	var err error
	if *docPath == "" {
		text, err = io.ReadAll(os.Stdin)
	} else {
		text, err = os.ReadFile(*docPath)
	}
	if err != nil {
		fatal(err)
	}
	doc, d, err := mix.ParseDocument(string(text))
	if err != nil {
		fatal(err)
	}
	if *dtdPath != "" {
		d, err = readDTD(*dtdPath)
		if err != nil {
			fatal(err)
		}
	}
	if d == nil {
		fatal(fmt.Errorf("no DTD: the document has no DOCTYPE internal subset and -dtd was not given"))
	}
	if errs := d.Check(); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "dtdcheck: DTD problem:", e)
		}
		exit(1)
	}
	if err := d.Validate(doc); err != nil {
		fmt.Fprintln(os.Stderr, "dtdcheck: INVALID:", err)
		exit(1)
	}
	fmt.Println("valid")
}

func readDTD(path string) (*mix.DTD, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return mix.ParseDTD(string(b))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtdcheck:", err)
	os.Exit(1)
}

// exit terminates with the given status; -stats rebinds it so the cache
// counters are printed even on the failure exits, which bypass defers.
var exit = os.Exit

// printCacheStats dumps the compiled-automata cache counters to stderr
// (see -stats): one line of JSON, separate from the primary output.
func printCacheStats() {
	b, _ := json.Marshal(automata.CacheStats())
	fmt.Fprintf(os.Stderr, "automata_cache: %s\n", b)
}
