// Command mixserve runs a MIX mediator as an HTTP service: sources are
// XML files carrying their DTDs as DOCTYPE internal subsets, views are
// XMAS files, and every view gets a URL — exactly the deployment the paper
// sketches ("a mediated view is assigned a URL thru which it will be
// accessed by queries").
//
// Usage:
//
//	mixserve -addr :8080 \
//	   -source cs=dept.xml -source bio=lab.xml \
//	   -view cs:withJournals.xmas -view bio:prolific.xmas
//
// Endpoints: see internal/serve; serving counters are at /metrics (JSON
// by default, Prometheus text with ?format=prometheus), recent request
// traces at /debug/trace, and process expvars at /debug/vars. The view
// DTDs are inferred at startup; registration fails fast on invalid
// sources or non-inferable views.
//
// The server is hardened for production use: read-header/read/write/idle
// timeouts bound slow clients, and SIGINT/SIGTERM trigger a graceful
// drain before exit. Observability knobs: -log-level and -log-format
// control the structured (slog) access/lifecycle logs, -trace-buffer
// sizes the /debug/trace ring, and -pprof opt-in mounts the
// net/http/pprof profiling endpoints under /debug/pprof/.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	mix "repro"
	"repro/internal/budgetflag"
	"repro/internal/cluster"
	"repro/internal/mediator"
	"repro/internal/obs"
	"repro/internal/serve"
)

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(v string) error { *r = append(*r, v); return nil }

// hedgeDelayName renders the hedge-delay flag for the startup log.
func hedgeDelayName(d time.Duration) string {
	switch {
	case d < 0:
		return "off"
	case d == 0:
		return "p95"
	}
	return d.String()
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	name := flag.String("name", "mix", "mediator name")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "graceful drain deadline on SIGINT/SIGTERM")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	traceBuffer := flag.Int("trace-buffer", serve.DefaultTraceCapacity, "number of recent request traces kept for /debug/trace")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof profiling endpoints under /debug/pprof/")
	noPrune := flag.Bool("no-prune", false, "disable query-time per-part satisfiability pruning (sources are always fetched)")
	hedgeDelay := flag.Duration("hedge-delay", 0, "replica hedge delay (0 derives it from the fetch-latency p95, negative disables hedging)")
	retryBudgetCap := flag.Float64("retry-budget", 10, "retry-budget token capacity per replicated source (hedges, failovers and retries share it)")
	retryRefill := flag.Float64("retry-refill", 1, "retry-budget refill rate, tokens per second")
	noStaleServe := flag.Bool("no-stale-serve", false, "disable last-known-good stale serving when every replica of a source is down")
	ejectCooldown := flag.Duration("eject-cooldown", 5*time.Second, "how long an ejected replica is skipped before a recovery probe")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "active replica health-check interval (0 disables active checks)")
	clusterSelf := flag.String("cluster-self", "", "this node's name in the cluster ring (enables cluster mode)")
	virtualNodes := flag.Int("virtual-nodes", cluster.DefaultVirtualNodes, "virtual nodes per member on the consistent-hash ring")
	var sources, views, clusterPeers, replicate repeated
	flag.Var(&sources, "source", "source as name=file.xml or name=a.xml,b.xml,... (repeatable); several comma-separated files form a replica set (the files' DTDs must be equivalent)")
	flag.Var(&views, "view", "view as source:file.xmas (repeatable); in cluster mode, every node is given the full view set and defines only the views it owns")
	flag.Var(&clusterPeers, "cluster-peers", "cluster members as name=http://host:port (repeatable or comma-separated); must include -cluster-self and be identical on every node")
	flag.Var(&replicate, "replicate", "replication factor for a hot view as view=N (repeatable); the ring yields N owners and non-owners fail over between them")
	limitsOf := budgetflag.Register(flag.CommandLine)
	flag.Parse()

	level := obs.ParseLevel(*logLevel)
	var logger *slog.Logger
	switch *logFormat {
	case "json":
		logger = obs.NewLogger(os.Stderr, level)
	case "text":
		logger = obs.NewTextLogger(os.Stderr, level)
	default:
		fmt.Fprintf(os.Stderr, "mixserve: -log-format must be text or json, got %q\n", *logFormat)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	if len(sources) == 0 {
		fmt.Fprintln(os.Stderr, "mixserve: at least one -source is required")
		flag.Usage()
		os.Exit(1)
	}

	m := mix.NewMediator(*name)
	if *noPrune {
		m.SetPruning(false)
		log.Printf("query-time satisfiability pruning disabled")
	}
	if limits := limitsOf(); !limits.Unlimited() {
		// Applies to every subsequent view definition and to POST /infer:
		// inference that exhausts the budget degrades to a sound-but-looser
		// view DTD instead of stalling startup or a request.
		m.SetInferenceBudget(limits)
		log.Printf("inference budget: deadline=%s states=%d classes=%d refine=%d",
			limits.Deadline, limits.MaxStates, limits.MaxClasses, limits.MaxRefineSteps)
	}
	var replicaSets []*mix.ReplicaSet
	for _, s := range sources {
		nm, spec, ok := strings.Cut(s, "=")
		if !ok {
			log.Fatalf("mixserve: -source %q must be name=file.xml[,file2.xml,...]", s)
		}
		files := strings.Split(spec, ",")
		replicas := make([]mix.Wrapper, 0, len(files))
		for i, file := range files {
			text, err := os.ReadFile(file)
			if err != nil {
				log.Fatal(err)
			}
			doc, d, err := mix.ParseDocument(string(text))
			if err != nil {
				log.Fatalf("mixserve: %s: %v", file, err)
			}
			if d == nil {
				log.Fatalf("mixserve: %s has no DOCTYPE internal subset; the mediator needs the source DTD", file)
			}
			replicaName := nm
			if len(files) > 1 {
				replicaName = fmt.Sprintf("%s/replica-%d", nm, i)
			}
			src, err := mix.NewStaticSource(replicaName, doc, d)
			if err != nil {
				log.Fatal(err)
			}
			replicas = append(replicas, src)
			log.Printf("source %s: %s (%d elements)", replicaName, file, doc.Root.Size())
		}
		var src mix.Wrapper = replicas[0]
		if len(replicas) > 1 {
			rs, err := mix.NewReplicaSet(nm, replicas, mix.ReplicaSetOptions{
				Health:            mix.HealthOptions{EjectCooldown: *ejectCooldown},
				HedgeDelay:        *hedgeDelay,
				Budget:            mix.NewRetryBudget(mix.RetryBudgetOptions{Capacity: *retryBudgetCap, RefillPerSecond: *retryRefill}),
				DisableStaleServe: *noStaleServe,
			})
			if err != nil {
				log.Fatal(err)
			}
			replicaSets = append(replicaSets, rs)
			src = rs
			log.Printf("source %s: replica set of %d (hedge-delay=%s, budget=%.0f+%.1f/s, stale-serve=%v)",
				nm, len(replicas), hedgeDelayName(*hedgeDelay), *retryBudgetCap, *retryRefill, !*noStaleServe)
		}
		if err := m.AddSource(src); err != nil {
			log.Fatal(err)
		}
	}
	// Parse every view definition before defining any: in cluster mode the
	// full view set (names and replication factors) seeds the ring, and
	// only then does this node know which views it owns and must define.
	type viewDef struct {
		srcName string
		q       *mix.Query
	}
	var defs []viewDef
	for _, v := range views {
		srcName, file, ok := strings.Cut(v, ":")
		if !ok {
			log.Fatalf("mixserve: -view %q must be source:file.xmas", v)
		}
		text, err := os.ReadFile(file)
		if err != nil {
			log.Fatal(err)
		}
		q, err := mix.ParseQuery(string(text))
		if err != nil {
			log.Fatalf("mixserve: %s: %v", file, err)
		}
		defs = append(defs, viewDef{srcName: srcName, q: q})
	}

	var clusterNode *cluster.Node
	if *clusterSelf != "" {
		cfg := cluster.Config{
			Self:         *clusterSelf,
			Nodes:        map[string]string{},
			VirtualNodes: *virtualNodes,
			Views:        map[string]int{},
			Budget:       mix.NewRetryBudget(mix.RetryBudgetOptions{Capacity: *retryBudgetCap, RefillPerSecond: *retryRefill}),
		}
		for _, p := range clusterPeers {
			for _, pair := range strings.Split(p, ",") {
				nm, url, ok := strings.Cut(pair, "=")
				if !ok {
					log.Fatalf("mixserve: -cluster-peers entry %q must be name=http://host:port", pair)
				}
				cfg.Nodes[nm] = url
			}
		}
		for _, d := range defs {
			cfg.Views[d.q.Name] = 1
		}
		for _, r := range replicate {
			nm, nStr, ok := strings.Cut(r, "=")
			if !ok {
				log.Fatalf("mixserve: -replicate %q must be view=N", r)
			}
			n, err := strconv.Atoi(nStr)
			if err != nil || n < 1 {
				log.Fatalf("mixserve: -replicate %q: factor must be a positive integer", r)
			}
			if _, known := cfg.Views[nm]; !known {
				log.Fatalf("mixserve: -replicate names unknown view %q (no matching -view)", nm)
			}
			cfg.Views[nm] = n
		}
		var err error
		clusterNode, err = cluster.NewNode(cfg)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("cluster: node %s of %d (vnodes=%d), owns %s",
			*clusterSelf, len(cfg.Nodes), clusterNode.Ring().VirtualNodes(),
			strings.Join(clusterNode.OwnedViews(), ","))
	} else if len(clusterPeers) > 0 || len(replicate) > 0 {
		log.Fatalf("mixserve: -cluster-peers/-replicate require -cluster-self")
	}

	for _, d := range defs {
		if clusterNode != nil && !clusterNode.Owns(d.q.Name) {
			log.Printf("view %s: owned by %s, served here by forwarding",
				d.q.Name, strings.Join(clusterNode.Owners(d.q.Name), ","))
			continue
		}
		view, err := m.DefineView(d.srcName, d.q)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("view %s over %s: class %s, non-tight merge: %v",
			view.Name, d.srcName, view.Class, view.NonTight)
		if view.Degraded {
			log.Printf("view %s: DEGRADED (sound but not tightest): %s",
				view.Name, view.DegradedReason)
		}
	}

	var med *mediator.Mediator = m
	// The serving counters double as process expvars (GET /debug/vars),
	// next to the JSON snapshot at GET /metrics.
	expvar.Publish("mediator", expvar.Func(func() any { return med.Stats() }))
	tracer := obs.NewTracer(*traceBuffer)
	mux := http.NewServeMux()
	serveOpts := []serve.Option{serve.WithTracer(tracer), serve.WithLogger(logger)}
	if clusterNode != nil {
		serveOpts = append(serveOpts, serve.WithCluster(clusterNode))
	}
	mux.Handle("/", serve.New(med, serveOpts...))
	mux.Handle("GET /debug/vars", expvar.Handler())
	if *pprofOn {
		// Opt-in: pprof exposes internals (heap contents, goroutine dumps)
		// that an internet-facing mediator should not serve by default.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof enabled", slog.String("path", "/debug/pprof/"))
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *healthInterval > 0 {
		// One active health-check loop per replica set: ejected replicas are
		// probed on a cadence, so recovery (and /readyz flipping back to 200)
		// does not wait for query traffic.
		for _, rs := range replicaSets {
			go rs.RunHealthChecks(ctx, *healthInterval, *healthInterval)
		}
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("mediator %s listening on %s (%d views)", *name, *addr, len(m.Views()))

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("mixserve: signal received, draining (up to %s)", *shutdownTimeout)
		shCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("mixserve: shutdown: %v", err)
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("mixserve: serve: %v", err)
		}
		log.Printf("mixserve: drained, bye")
	}
}
