// Command mixload is the sustained-load harness: it synthesizes an
// XMark-class fleet of sources (recursive mixed content, deep optional
// chains, wide disjunctions, IDREF cross-links), stands up an in-process
// mediator over them — or attaches to a remote mixserve via -target —
// and drives an open-loop mixed operation stream (plain and qualified
// queries, materializations, inferences, cache invalidations) at a
// target request rate from a deterministic seed. After the run it
// scrapes /metrics, asserts the latency/error/degradation SLOs, and
// archives the whole report as BENCH_serve.json.
//
// Usage:
//
//	mixload -seed 1 -rps 100 -duration 10s -sources 6 -out BENCH_serve.json
//	mixload -target http://localhost:8080 -view published -rps 50 -duration 30s
//	mixload -faults 0.2 -breakers -slo-error-rate -1 -duration 5s
//	mixload -chaos -replicas 3 -chaos-phase 2s -out CHAOS_report.json
//
// With -chaos the harness instead runs the replica chaos campaign (see
// internal/load.RunChaos): each source becomes a replica set of leaf
// servers driven through baseline, flapping-replica, full-blackout and
// recovery phases, asserting zero errors under flapping, marked DTD-valid
// stale serving under blackout, a retry-budget-bounded upstream load
// amplification, and automatic recovery.
//
// Exit status: 0 when the run passed its SLOs, 1 on SLO failure, 2 on
// harness error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/load"
)

func main() {
	seed := flag.Int64("seed", 1, "seed fixing the fleet, corpora and operation stream")
	rps := flag.Float64("rps", 100, "open-loop target request rate")
	duration := flag.Duration("duration", 5*time.Second, "stream length")
	sources := flag.Int("sources", 6, "number of synthesized sources (in-process mode)")
	familiesFlag := flag.String("families", "", "comma-separated schema family rotation (default: all of "+familyNames()+")")
	depth := flag.Int("depth", 0, "schema depth parameter (optional chains); 0 = default")
	width := flag.Int("width", 0, "schema width parameter (disjunctions, markup names); 0 = default")
	docDepth := flag.Int("doc-depth", 0, "corpus document depth budget; 0 = default")
	docBias := flag.Float64("doc-length-bias", 0, "corpus length bias in (0,1]; lower = larger documents; 0 = default")
	mixFlag := flag.String("mix", "", "operation mix as kind=weight,... (kinds: query, qualified, materialize, infer, invalidate, invalidate-source)")
	target := flag.String("target", "", "drive a remote mixserve at this base URL instead of the in-process harness")
	view := flag.String("view", "", "view to drive (default: the in-process union view 'load')")
	maxInFlight := flag.Int("max-inflight", 0, "bound on concurrent in-flight requests; 0 = default")
	faults := flag.Float64("faults", 0, "fault-injection campaign: per-fetch failure probability (in-process only)")
	faultDelay := flag.Duration("fault-delay", 0, "max injected per-fetch delay for the fault campaign")
	breakers := flag.Bool("breakers", false, "wrap sources in circuit breakers (degraded serving instead of 500s)")
	noPrune := flag.Bool("no-prune", false, "disable query-time satisfiability pruning (comparison runs)")
	pruneCompare := flag.Bool("prune-compare", false, "after the run, verify pruned answers are bit-identical to unpruned")
	sloP95 := flag.Duration("slo-p95", 0, "per-op p95 latency ceiling; 0 = default (250ms), -1 = unchecked")
	sloP99 := flag.Duration("slo-p99", 0, "per-op p99 latency ceiling; 0 = default (1s), -1 = unchecked")
	sloErrRate := flag.Float64("slo-error-rate", 0, "error-rate ceiling; default 0 (strict), -1 = unchecked")
	sloShedRate := flag.Float64("slo-shed-rate", 0, "shed-rate ceiling; 0 = default (0.01), -1 = unchecked")
	out := flag.String("out", "", "archive the report as JSON to this path (e.g. BENCH_serve.json)")
	quiet := flag.Bool("quiet", false, "suppress the human-readable summary")
	chaos := flag.Bool("chaos", false, "run the replica chaos campaign (baseline / flap / blackout / recovery) instead of the load stream")
	replicas := flag.Int("replicas", 3, "replicas per source for the chaos campaign")
	chaosPhase := flag.Duration("chaos-phase", 2*time.Second, "duration of each chaos campaign phase")
	clusterMode := flag.Bool("cluster", false, "run the cluster smoke campaign (3-node fleet, single-node bit-equivalence, kill-one-node) instead of the load stream")
	clusterNodes := flag.Int("cluster-nodes", 3, "fleet size for the cluster campaign")
	clusterViews := flag.Int("cluster-views", 4, "sharded views for the cluster campaign")
	clusterReplicated := flag.Int("cluster-replicated", 1, "how many cluster views are replicated (factor 2)")
	clusterPhase := flag.Duration("cluster-phase", 2*time.Second, "duration of each cluster load phase")
	flag.Parse()

	if *clusterMode {
		runCluster(load.ClusterOptions{
			Seed:       *seed,
			Nodes:      *clusterNodes,
			Views:      *clusterViews,
			Replicated: *clusterReplicated,
			RPS:        *rps,
			Phase:      *clusterPhase,
		}, *out, *quiet)
		return
	}

	if *chaos {
		runChaos(load.ChaosOptions{
			Seed:     *seed,
			Sources:  *sources,
			Replicas: *replicas,
			RPS:      *rps,
			Phase:    *chaosPhase,
		}, *out, *quiet)
		return
	}

	opts := load.Options{
		Seed:          *seed,
		Sources:       *sources,
		Depth:         *depth,
		Width:         *width,
		DocMaxDepth:   *docDepth,
		DocLengthBias: *docBias,
		RPS:           *rps,
		Duration:      *duration,
		MaxInFlight:   *maxInFlight,
		Target:        *target,
		View:          *view,
		FaultRate:     *faults,
		FaultMaxDelay: *faultDelay,
		Breakers:      *breakers,
		NoPrune:       *noPrune,
		PruneCompare:  *pruneCompare,
		SLO: load.SLO{
			P95:          *sloP95,
			P99:          *sloP99,
			MaxErrorRate: *sloErrRate,
			MaxShedRate:  *sloShedRate,
			ExpectFaults: *faults > 0,
		},
	}
	if *familiesFlag != "" {
		for _, name := range strings.Split(*familiesFlag, ",") {
			f, err := load.ParseFamily(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			opts.Families = append(opts.Families, f)
		}
	}
	if *mixFlag != "" {
		mix, err := load.ParseMix(*mixFlag)
		if err != nil {
			fatal(err)
		}
		opts.Mix = mix
	}

	h, err := load.NewHarness(opts)
	if err != nil {
		fatal(err)
	}
	defer h.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := h.Run(ctx)
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fatal(err)
		}
	}
	if !*quiet {
		fmt.Println(rep.Summary())
	}
	if !rep.Pass {
		os.Exit(1)
	}
}

// runChaos executes the replica chaos campaign and exits with the same
// status convention as a load run: 0 on pass, 1 on check failure, 2 on
// harness error.
func runChaos(opts load.ChaosOptions, out string, quiet bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := load.RunChaos(ctx, opts)
	if err != nil {
		fatal(err)
	}
	if out != "" {
		if err := rep.WriteFile(out); err != nil {
			fatal(err)
		}
	}
	if !quiet {
		fmt.Println(rep.Summary())
	}
	if !rep.Pass {
		os.Exit(1)
	}
	os.Exit(0)
}

// runCluster executes the cluster smoke campaign (see load.RunCluster)
// with the same exit-status convention.
func runCluster(opts load.ClusterOptions, out string, quiet bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := load.RunCluster(ctx, opts)
	if err != nil {
		fatal(err)
	}
	if out != "" {
		if err := rep.WriteFile(out); err != nil {
			fatal(err)
		}
	}
	if !quiet {
		fmt.Println(rep.Summary())
	}
	if !rep.Pass {
		os.Exit(1)
	}
	os.Exit(0)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mixload:", err)
	os.Exit(2)
}

func familyNames() string {
	names := make([]string, 0, len(load.Families()))
	for _, f := range load.Families() {
		names = append(names, string(f))
	}
	return strings.Join(names, ",")
}
