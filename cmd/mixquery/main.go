// Command mixquery evaluates a pick-element XMAS query against an XML
// document and prints the view document. When the document carries a
// DOCTYPE internal subset (or -dtd supplies one), the query is first
// simplified against the DTD — the MIX query-processor path; -no-simplify
// disables that and evaluates the raw query, the TSIMMIS-style baseline.
//
// Usage:
//
//	mixquery -query view.xmas [-doc data.xml] [-dtd source.dtd]
//	         [-no-simplify] [-indent N] [-validate] [-sat]
//
// With no -doc the document is read from standard input. -validate also
// infers the view DTD and checks the result against it (soundness in
// action); it requires a DTD. -sat skips evaluation entirely: it decides
// the query's satisfiability against the -dtd DTD, prints the verdict and
// the DTD's tractable class, and exits 0 (satisfiable), 2 (unsatisfiable)
// or 3 (unknown).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	mix "repro"
	"repro/internal/obs"
)

func main() {
	queryPath := flag.String("query", "", "path to the XMAS query")
	docPath := flag.String("doc", "", "path to the XML document (default: stdin)")
	dtdPath := flag.String("dtd", "", "path to a DTD overriding the document's DOCTYPE")
	noSimplify := flag.Bool("no-simplify", false, "skip DTD-based query simplification")
	satOnly := flag.Bool("sat", false, "only decide satisfiability against the DTD: print the verdict and DTD class, exit 0=satisfiable 2=unsatisfiable 3=unknown")
	indent := flag.Int("indent", 2, "output indentation (negative = compact)")
	validate := flag.Bool("validate", false, "infer the view DTD and validate the result against it")
	explain := flag.Bool("explain", false, "print the DTD-aware explain plan to stderr before evaluating")
	traceRun := flag.Bool("trace", false, "dump the run's span tree to stderr")
	flag.Parse()
	if *queryPath == "" {
		fmt.Fprintln(os.Stderr, "mixquery: -query is required")
		flag.Usage()
		os.Exit(1)
	}
	qText, err := os.ReadFile(*queryPath)
	if err != nil {
		fatal(err)
	}
	q, err := mix.ParseQuery(string(qText))
	if err != nil {
		fatal(err)
	}
	if *satOnly {
		// Satisfiability needs no document: decide against the DTD alone
		// and encode the three-valued verdict in the exit status.
		if *dtdPath == "" {
			fatal(fmt.Errorf("-sat requires -dtd"))
		}
		b, err := os.ReadFile(*dtdPath)
		if err != nil {
			fatal(err)
		}
		d, err := mix.ParseDTD(string(b))
		if err != nil {
			fatal(err)
		}
		verdict := mix.Satisfiability(context.Background(), q, d)
		fmt.Printf("verdict: %s\ndtd class: %s\n", verdict, mix.ClassifyDTD(d))
		switch verdict {
		case mix.VerdictUnsatisfiable:
			os.Exit(2)
		case mix.VerdictUnknown:
			os.Exit(3)
		}
		return
	}
	var docText []byte
	if *docPath == "" {
		docText, err = io.ReadAll(os.Stdin)
	} else {
		docText, err = os.ReadFile(*docPath)
	}
	if err != nil {
		fatal(err)
	}
	doc, srcDTD, err := mix.ParseDocument(string(docText))
	if err != nil {
		fatal(err)
	}
	if *dtdPath != "" {
		b, err := os.ReadFile(*dtdPath)
		if err != nil {
			fatal(err)
		}
		srcDTD, err = mix.ParseDTD(string(b))
		if err != nil {
			fatal(err)
		}
	}
	if srcDTD != nil {
		if err := srcDTD.Validate(doc); err != nil {
			fatal(fmt.Errorf("input document is not valid: %v", err))
		}
	}

	if *explain {
		if srcDTD == nil {
			fatal(fmt.Errorf("-explain requires a DTD (DOCTYPE subset or -dtd)"))
		}
		plan, err := mix.ExplainQuery(q, srcDTD)
		if err != nil {
			fatal(err)
		}
		fmt.Fprint(os.Stderr, plan)
	}

	ctx := context.Background()
	var tracer *obs.Tracer
	var root *obs.Span
	if *traceRun {
		tracer = obs.NewTracer(1)
		ctx, root = tracer.StartRequest(ctx, "mixquery", "")
	}
	defer func() {
		if root == nil {
			return
		}
		root.End()
		for _, ts := range tracer.Traces(1) {
			obs.WriteTrace(os.Stderr, ts)
		}
	}()

	run := q
	if srcDTD != nil && !*noSimplify {
		_, sspan := obs.StartSpan(ctx, "simplify")
		sq, rep, err := mix.SimplifyQuery(q, srcDTD)
		sspan.SetAttr(obs.Int("pruned", int64(rep.PrunedConditions)), obs.Int("dropped", int64(rep.DroppedNames)))
		sspan.End()
		if err != nil {
			fatal(err)
		}
		if rep.Class == mix.Unsatisfiable {
			fmt.Fprintln(os.Stderr, "mixquery: query is unsatisfiable under the DTD; result is empty")
			fmt.Println(mix.MarshalDocument(mix.EmptyResult(q), nil, *indent))
			return
		}
		if rep.PrunedConditions > 0 || rep.DroppedNames > 0 {
			fmt.Fprintf(os.Stderr, "mixquery: simplifier pruned %d condition(s), dropped %d name(s)\n",
				rep.PrunedConditions, rep.DroppedNames)
		}
		run = sq
	}
	_, espan := obs.StartSpan(ctx, "eval")
	view, err := mix.Eval(run, doc)
	espan.End()
	if err != nil {
		fatal(err)
	}
	if *validate {
		if srcDTD == nil {
			fatal(fmt.Errorf("-validate requires a DTD (DOCTYPE subset or -dtd)"))
		}
		res, err := mix.InferContext(ctx, q, srcDTD)
		if err != nil {
			fatal(err)
		}
		if err := res.DTD.Validate(view); err != nil {
			fatal(fmt.Errorf("SOUNDNESS VIOLATION (this is a bug): %v", err))
		}
		if err := res.SDTD.Satisfies(view); err != nil {
			fatal(fmt.Errorf("SOUNDNESS VIOLATION against s-DTD (this is a bug): %v", err))
		}
		fmt.Fprintln(os.Stderr, "mixquery: result satisfies the inferred view DTD and s-DTD")
	}
	fmt.Print(mix.MarshalDocument(view, nil, *indent))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mixquery:", err)
	os.Exit(1)
}
