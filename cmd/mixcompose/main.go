// Command mixcompose rewrites a query over a view into an equivalent query
// over the view's source — the mediator's query/view composition step as a
// standalone tool. The composed query can then be shipped to the source
// (e.g. via mixquery) without ever materializing the view.
//
// Usage:
//
//	mixcompose -view members.xmas -query profs.xmas
//
// Exit status 2 means the query is outside the composable fragment (the
// caller should materialize); exit status 3 means the composition is
// provably empty (the query can match nothing in the view).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	mix "repro"
)

func main() {
	viewPath := flag.String("view", "", "path to the view definition (XMAS)")
	queryPath := flag.String("query", "", "path to the query against the view (XMAS)")
	flag.Parse()
	if *viewPath == "" || *queryPath == "" {
		fmt.Fprintln(os.Stderr, "mixcompose: -view and -query are required")
		flag.Usage()
		os.Exit(1)
	}
	viewDef, err := readQuery(*viewPath)
	if err != nil {
		fatal(err)
	}
	q, err := readQuery(*queryPath)
	if err != nil {
		fatal(err)
	}
	composed, err := mix.ComposeQuery(viewDef, q)
	switch {
	case errors.Is(err, mix.ErrNotComposable):
		fmt.Fprintln(os.Stderr, "mixcompose: not composable (materialize the view instead):", err)
		os.Exit(2)
	case errors.Is(err, mix.ErrEmptyComposition):
		fmt.Fprintln(os.Stderr, "mixcompose: the query can match nothing in this view; the answer is empty")
		os.Exit(3)
	case err != nil:
		fatal(err)
	}
	fmt.Println(composed)
}

func readQuery(path string) (*mix.Query, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return mix.ParseQuery(string(b))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mixcompose:", err)
	os.Exit(1)
}
