// Command mixgen generates random XML documents valid under a DTD — the
// synthetic-workload tool behind the soundness checks and benchmarks.
//
// Usage:
//
//	mixgen -dtd schema.dtd [-n 1] [-seed 1] [-depth 12] [-bias 0.35]
//	       [-indent 2] [-ids]
//
// Each document is printed with its DTD inlined, so the output feeds
// directly into dtdcheck and mixquery.
package main

import (
	"flag"
	"fmt"
	"os"

	mix "repro"
)

func main() {
	dtdPath := flag.String("dtd", "", "path to the DTD")
	n := flag.Int("n", 1, "number of documents")
	seed := flag.Int64("seed", 1, "random seed")
	depth := flag.Int("depth", 12, "soft nesting depth bound")
	bias := flag.Float64("bias", 0.35, "stop bias in (0,1]: higher = shorter sequences")
	indent := flag.Int("indent", 2, "indentation (negative = compact)")
	ids := flag.Bool("ids", false, "assign unique IDs to every element")
	inline := flag.Bool("doctype", true, "inline the DTD as a DOCTYPE subset")
	flag.Parse()
	if *dtdPath == "" {
		fmt.Fprintln(os.Stderr, "mixgen: -dtd is required")
		flag.Usage()
		os.Exit(1)
	}
	b, err := os.ReadFile(*dtdPath)
	if err != nil {
		fatal(err)
	}
	d, err := mix.ParseDTD(string(b))
	if err != nil {
		fatal(err)
	}
	g, err := mix.NewGenerator(d, mix.GenOptions{
		Seed: *seed, MaxDepth: *depth, LengthBias: *bias, AssignIDs: *ids,
	})
	if err != nil {
		fatal(err)
	}
	for i := 0; i < *n; i++ {
		doc := g.Document()
		if err := d.Validate(doc); err != nil {
			fatal(fmt.Errorf("generated document invalid (bug): %v", err))
		}
		var inlined *mix.DTD
		if *inline {
			inlined = d
		}
		fmt.Print(mix.MarshalDocument(doc, inlined, *indent))
		if i+1 < *n {
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mixgen:", err)
	os.Exit(1)
}
