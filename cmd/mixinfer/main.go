// Command mixinfer runs view DTD inference: given a source DTD and a
// pick-element XMAS view definition, it prints the inferred specialized
// view DTD, the merged plain view DTD, the query classification, and any
// non-tightness signals — the output the MIX mediator's View DTD Inference
// module hands to the DTD-based query interface and to stacked mediators.
//
// Usage:
//
//	mixinfer -dtd source.dtd -query view.xmas [-naive] [-plain-only|-sdtd-only]
//
// Exit status 2 flags an unsatisfiable (always-empty) view.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	mix "repro"
	"repro/internal/automata"
	"repro/internal/budgetflag"
	"repro/internal/obs"
)

func main() {
	dtdPath := flag.String("dtd", "", "path to the source DTD (<!DOCTYPE ...>)")
	queryPath := flag.String("query", "", "path to the XMAS view definition")
	naive := flag.Bool("naive", false, "also print the naive (Example 3.1) baseline DTD")
	plainOnly := flag.Bool("plain-only", false, "print only the merged plain view DTD")
	sdtdOnly := flag.Bool("sdtd-only", false, "print only the specialized view DTD")
	stats := flag.Bool("stats", false, "print compiled-automata cache counters to stderr on exit")
	traceRun := flag.Bool("trace", false, "dump the inference span tree (with budget counters) to stderr")
	limitsOf := budgetflag.Register(flag.CommandLine)
	flag.Parse()
	if *dtdPath == "" || *queryPath == "" {
		fmt.Fprintln(os.Stderr, "mixinfer: -dtd and -query are required")
		flag.Usage()
		os.Exit(1)
	}
	src, err := readDTD(*dtdPath)
	if err != nil {
		fatal(err)
	}
	qText, err := os.ReadFile(*queryPath)
	if err != nil {
		fatal(err)
	}
	q, err := mix.ParseQuery(string(qText))
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	if limits := limitsOf(); !limits.Unlimited() {
		ctx = mix.BudgetContext(ctx, mix.NewBudget(limits))
	}
	var tracer *obs.Tracer
	var root *obs.Span
	if *traceRun {
		tracer = obs.NewTracer(1)
		ctx, root = tracer.StartRequest(ctx, "mixinfer", "")
	}
	res, err := mix.InferContext(ctx, q, src)
	if root != nil {
		root.End()
		for _, ts := range tracer.Traces(1) {
			obs.WriteTrace(os.Stderr, ts)
		}
	}
	if err != nil {
		fatal(err)
	}
	if !*plainOnly {
		fmt.Println("-- specialized view DTD (tight; Section 3.3)")
		fmt.Println(res.SDTD)
	}
	if !*sdtdOnly {
		fmt.Println("-- plain view DTD (merged; Section 4.3)")
		fmt.Println(res.DTD)
	}
	fmt.Printf("-- classification: %s\n", res.Class)
	if res.Degraded {
		fmt.Printf("-- degraded: %s (sound but not tightest; loose elements: %s)\n",
			res.DegradedReason, strings.Join(res.DegradedNames, ", "))
	}
	for _, ev := range res.Merges {
		if ev.Distinct {
			fmt.Printf("-- warning: %s\n", ev)
		}
	}
	if *naive {
		nd, err := mix.NaiveInfer(q, src)
		if err != nil {
			fatal(err)
		}
		fmt.Println("-- naive baseline DTD (Example 3.1)")
		fmt.Println(nd)
	}
	if *stats {
		printCacheStats()
	}
	if res.Class == mix.Unsatisfiable {
		os.Exit(2)
	}
}

// printCacheStats dumps the compiled-automata cache counters to stderr, so
// scripts can observe how much of the inference run was answered from
// cache without parsing the primary output.
func printCacheStats() {
	b, _ := json.Marshal(automata.CacheStats())
	fmt.Fprintf(os.Stderr, "automata_cache: %s\n", b)
}

func readDTD(path string) (*mix.DTD, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return mix.ParseDTD(string(b))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mixinfer:", err)
	os.Exit(1)
}
