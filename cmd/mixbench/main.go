// Command mixbench runs the experiment harness: every table, figure-level
// claim and worked example of the paper, reproduced and checked. With no
// arguments it runs all experiments; pass experiment IDs (E1 … E12) to run
// a subset.
//
// Usage:
//
//	mixbench [-quick] [-seed N] [-stable] [-list] [E1 E2 ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "shrink corpora and sweeps for a fast run")
	seed := flag.Int64("seed", 1, "random seed for generated workloads")
	stable := flag.Bool("stable", false, "suppress wall-clock output so same-seed runs are byte-identical")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}
	cfg := bench.Config{Quick: *quick, Seed: *seed, Stable: *stable}
	if err := bench.Run(os.Stdout, cfg, flag.Args()...); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
