// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON report on stdout, so benchmark runs can be archived
// and diffed mechanically (`make bench-compare` writes BENCH_automata.json
// with it).
//
// Besides the per-benchmark numbers it pairs every BenchmarkXxxCold with
// its BenchmarkXxxWarm sibling and reports the speedup — the figure of
// merit for the compiled-automata cache.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Speedup pairs a cold benchmark with its warm sibling.
type Speedup struct {
	Base   string  `json:"base"`
	ColdNs float64 `json:"cold_ns_per_op"`
	WarmNs float64 `json:"warm_ns_per_op"`
	Factor float64 `json:"speedup"`
}

// Report is the whole document.
type Report struct {
	Package    string    `json:"package,omitempty"`
	Benchmarks []Result  `json:"benchmarks"`
	Speedups   []Speedup `json:"speedups,omitempty"`
}

func main() {
	rep := Report{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if pkg, ok := strings.CutPrefix(line, "pkg: "); ok {
			rep.Package = strings.TrimSpace(pkg)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	byName := map[string]Result{}
	for _, r := range rep.Benchmarks {
		byName[r.Name] = r
	}
	for _, r := range rep.Benchmarks {
		base, ok := strings.CutSuffix(r.Name, "Cold")
		if !ok {
			continue
		}
		warm, ok := byName[base+"Warm"]
		if !ok || warm.NsPerOp == 0 {
			continue
		}
		rep.Speedups = append(rep.Speedups, Speedup{
			Base:   base,
			ColdNs: r.NsPerOp,
			WarmNs: warm.NsPerOp,
			Factor: r.NsPerOp / warm.NsPerOp,
		})
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

// parseLine parses one "BenchmarkName-8  1000  123.4 ns/op  56 B/op
// 7 allocs/op" line; the -cpu suffix and the memory columns are optional.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	return r, true
}
