// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON report on stdout, so benchmark runs can be archived
// and diffed mechanically (`make bench-compare` writes BENCH_automata.json
// with it).
//
// Besides the per-benchmark numbers it pairs every BenchmarkXxxCold with
// its BenchmarkXxxWarm sibling and reports the speedup — the figure of
// merit for the compiled-automata cache.
//
// With -compare, benchjson instead diffs two archived reports:
//
//	benchjson -compare [-threshold 0.25] old.json new.json
//
// Every benchmark present in both reports is compared on ns/op; a
// regression beyond the threshold (default +25%) is reported and the exit
// status is 1 — the automated cross-commit ratchet for the BENCH_*.json
// artifacts. Benchmarks appearing in only one report are noted but never
// fail the run (suites are allowed to grow).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Speedup pairs a cold benchmark with its warm sibling.
type Speedup struct {
	Base   string  `json:"base"`
	ColdNs float64 `json:"cold_ns_per_op"`
	WarmNs float64 `json:"warm_ns_per_op"`
	Factor float64 `json:"speedup"`
}

// Report is the whole document.
type Report struct {
	Package    string    `json:"package,omitempty"`
	Benchmarks []Result  `json:"benchmarks"`
	Speedups   []Speedup `json:"speedups,omitempty"`
}

func main() {
	compareMode := flag.Bool("compare", false, "diff two archived reports (old.json new.json) instead of reading bench output from stdin")
	threshold := flag.Float64("threshold", 0.25, "with -compare: fail on ns/op regressions beyond this fraction (0.25 = +25%)")
	flag.Parse()
	if *compareMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		os.Exit(compare(flag.Arg(0), flag.Arg(1), *threshold))
	}

	rep := Report{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if pkg, ok := strings.CutPrefix(line, "pkg: "); ok {
			rep.Package = strings.TrimSpace(pkg)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	byName := map[string]Result{}
	for _, r := range rep.Benchmarks {
		byName[r.Name] = r
	}
	for _, r := range rep.Benchmarks {
		base, ok := strings.CutSuffix(r.Name, "Cold")
		if !ok {
			continue
		}
		warm, ok := byName[base+"Warm"]
		if !ok || warm.NsPerOp == 0 {
			continue
		}
		rep.Speedups = append(rep.Speedups, Speedup{
			Base:   base,
			ColdNs: r.NsPerOp,
			WarmNs: warm.NsPerOp,
			Factor: r.NsPerOp / warm.NsPerOp,
		})
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

// compare diffs two archived reports on ns/op and returns the process exit
// code: 0 when no common benchmark regressed beyond the threshold, 1 when
// at least one did, 2 on unreadable input.
func compare(oldPath, newPath string, threshold float64) int {
	oldRep, err := readReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newRep, err := readReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	oldBy := map[string]Result{}
	for _, r := range oldRep.Benchmarks {
		oldBy[r.Name] = r
	}
	regressions := 0
	compared := 0
	for _, nw := range newRep.Benchmarks {
		od, ok := oldBy[nw.Name]
		if !ok {
			fmt.Printf("NEW     %-50s %12.1f ns/op (no baseline)\n", nw.Name, nw.NsPerOp)
			continue
		}
		delete(oldBy, nw.Name)
		if od.NsPerOp <= 0 {
			continue
		}
		compared++
		delta := (nw.NsPerOp - od.NsPerOp) / od.NsPerOp
		verdict := "ok"
		if delta > threshold {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Printf("%-7s %-50s %12.1f -> %12.1f ns/op  %+6.1f%%\n",
			verdict, nw.Name, od.NsPerOp, nw.NsPerOp, delta*100)
	}
	for name := range oldBy {
		fmt.Printf("GONE    %-50s (present only in %s)\n", name, oldPath)
	}
	if regressions > 0 {
		fmt.Printf("FAIL: %d of %d benchmarks regressed more than %.0f%%\n", regressions, compared, threshold*100)
		return 1
	}
	fmt.Printf("ok: %d benchmarks within %.0f%% of baseline\n", compared, threshold*100)
	return 0
}

func readReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %v", path, err)
	}
	return rep, nil
}

// parseLine parses one "BenchmarkName-8  1000  123.4 ns/op  56 B/op
// 7 allocs/op" line; the -cpu suffix and the memory columns are optional.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	return r, true
}
