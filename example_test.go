package mix_test

import (
	"fmt"

	mix "repro"
)

// The library DTD used across the runnable documentation examples.
const libraryDTD = `<!DOCTYPE library [
  <!ELEMENT library (book+)>
  <!ELEMENT book (title, author+, (hardcover|paperback))>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT hardcover (#PCDATA)>
  <!ELEMENT paperback (#PCDATA)>
]>`

// ExampleInfer derives a view DTD and shows the disjunction removal of the
// paper's Example 3.2 on a small schema.
func ExampleInfer() {
	src := mix.MustDTD(libraryDTD)
	q := mix.MustQuery(`hardcovers = SELECT B WHERE <library> B:<book><hardcover/></book> </library>`)
	res, err := mix.Infer(q, src)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.DTD.Types["hardcovers"])
	fmt.Println(res.DTD.Types["book"])
	fmt.Println(res.Class)
	// Output:
	// (book*)
	// (title, author+, hardcover)
	// satisfiable
}

// ExampleEval materializes a view and validates it against the inferred
// DTD — soundness (Definition 3.1) in one screenful.
func ExampleEval() {
	src := mix.MustDTD(libraryDTD)
	q := mix.MustQuery(`hardcovers = SELECT B WHERE <library> B:<book><hardcover/></book> </library>`)
	doc, _, err := mix.ParseDocument(`<library>
	  <book><title>A</title><author>x</author><hardcover>1st</hardcover></book>
	  <book><title>B</title><author>y</author><paperback>2nd</paperback></book>
	</library>`)
	if err != nil {
		panic(err)
	}
	view, err := mix.Eval(q, doc)
	if err != nil {
		panic(err)
	}
	res, _ := mix.Infer(q, src)
	fmt.Println(len(view.Root.Children), res.DTD.Validate(view) == nil)
	// Output: 1 true
}

// ExampleRefine is the paper's Example 4.1: forcing a journal occurrence.
func ExampleRefine() {
	model, _ := mix.ParseContentModel("name, (journal|conference)*")
	fmt.Println(mix.Refine(model, "journal"))
	// Output: name, (journal | conference)*, journal, (journal | conference)*
}

// ExampleTighter decides the tightness order (Definition 3.2) and explains
// failures with a witness.
func ExampleTighter() {
	a := mix.MustDTD(`<!DOCTYPE r [ <!ELEMENT r (x, x)> <!ELEMENT x (#PCDATA)> ]>`)
	b := mix.MustDTD(`<!DOCTYPE r [ <!ELEMENT r (x+)> <!ELEMENT x (#PCDATA)> ]>`)
	tighter, _ := mix.Tighter(a, b)
	looser, w := mix.Tighter(b, a)
	fmt.Println(tighter, looser)
	fmt.Println(w)
	// Output:
	// true false
	// r: children (x) — allowed by the tighter candidate, rejected by the other
}

// ExampleNewQueryBuilder constructs a query from schema paths, with the
// DTD guiding every step.
func ExampleNewQueryBuilder() {
	src := mix.MustDTD(libraryDTD)
	q, err := mix.NewQueryBuilder(src).
		Pick("library/book").
		Where("library/book/hardcover").
		Build("hardcovers")
	if err != nil {
		panic(err)
	}
	res, _ := mix.Infer(q, src)
	fmt.Println(res.DTD.Types["book"])
	// Output: (title, author+, hardcover)
}

// ExampleComposeQuery rewrites a query over a view into a query over the
// source — the mediator's composition step.
func ExampleComposeQuery() {
	viewDef := mix.MustQuery(`hardcovers = SELECT B WHERE <library> B:<book><hardcover/></book> </library>`)
	q := mix.MustQuery(`titles = SELECT T WHERE <hardcovers> <book> T:<title/> </book> </hardcovers>`)
	composed, err := mix.ComposeQuery(viewDef, q)
	if err != nil {
		panic(err)
	}
	fmt.Println(composed.PickVar)
	fmt.Println(composed.Root.Names[0])
	// Output:
	// T
	// library
}
