// Benchmarks for every experiment axis in EXPERIMENTS.md. Correctness is
// asserted by the unit/integration tests and the mixbench harness; these
// testing.B benches measure the hot paths behind each experiment:
//
//	E1–E3, E7  — full view-DTD inference over the paper's D1 (Q2, Q3)
//	E5, E6     — type refinement, plain and tagged
//	E4         — tightness-order decisions on content models
//	E8         — list inference through a deep path
//	E9         — soundness machinery: generation, evaluation, validation
//	E10        — query evaluation with and without DTD simplification
//	E11        — mediation: union view registration, stacked query
//	E12        — inference scalability axes (width / venues / siblings / depth)
package mix_test

import (
	"fmt"
	"testing"

	mix "repro"
)

const d1Bench = `<!DOCTYPE department [
  <!ELEMENT department (name, professor+, gradStudent+, course*)>
  <!ELEMENT professor (firstName, lastName, publication+, teaches)>
  <!ELEMENT gradStudent (firstName, lastName, publication+)>
  <!ELEMENT publication (title, author+, (journal|conference))>
  <!ELEMENT name (#PCDATA)> <!ELEMENT firstName (#PCDATA)>
  <!ELEMENT lastName (#PCDATA)> <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)> <!ELEMENT journal (#PCDATA)>
  <!ELEMENT conference (#PCDATA)> <!ELEMENT course (#PCDATA)>
  <!ELEMENT teaches (#PCDATA)>
]>`

const q2Bench = `withJournals =
SELECT P
WHERE <department><name>CS</name>
        P:<professor|gradStudent>
           <publication id=Pub1><journal/></publication>
           <publication id=Pub2><journal/></publication>
        </>
      </department>
AND Pub1 != Pub2`

const q3Bench = `publist = SELECT P WHERE <department><name>CS</name> <professor|gradStudent> P:<publication><journal/></publication> </> </department>`

// BenchmarkE1InferQ2 measures full inference (tighten + list inference +
// normalize + merge) for the paper's flagship example.
func BenchmarkE1InferQ2(b *testing.B) {
	src := mix.MustDTD(d1Bench)
	q := mix.MustQuery(q2Bench)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mix.Infer(q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2InferQ3 measures inference for the disjunction-removal view.
func BenchmarkE2InferQ3(b *testing.B) {
	src := mix.MustDTD(d1Bench)
	q := mix.MustQuery(q3Bench)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mix.Infer(q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5Refine measures plain type refinement (Example 4.1).
func BenchmarkE5Refine(b *testing.B) {
	base, err := mix.ParseContentModel("name, (journal|conference)*")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mix.Refine(base, "journal")
	}
}

// BenchmarkE4Containment measures the tightness-order decision on the
// Example 3.5 chain types (automata pipeline: compile, product, BFS).
func BenchmarkE4Containment(b *testing.B) {
	t7, _ := mix.ParseContentModel("(prolog, (prolog | conclusion)*, conclusion)?")
	t8, _ := mix.ParseContentModel("(prolog, (prolog, (prolog | conclusion)*, conclusion)*, conclusion)?")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !mix.EquivalentModels(t7, t7) || mix.EquivalentModels(t7, t8) {
			b.Fatal("containment answer changed")
		}
	}
}

// BenchmarkE4ContainmentCold is BenchmarkE4Containment with the
// compiled-automata cache purged each iteration: the pair quantifies what
// the cache buys on the mediator's repeated-decision hot path (the warm
// variant must be at least 5× faster; see internal/automata/bench_test.go
// for the finer-grained cold/warm splits).
func BenchmarkE4ContainmentCold(b *testing.B) {
	t7, _ := mix.ParseContentModel("(prolog, (prolog | conclusion)*, conclusion)?")
	t8, _ := mix.ParseContentModel("(prolog, (prolog, (prolog | conclusion)*, conclusion)*, conclusion)?")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mix.PurgeAutomataCache()
		if !mix.EquivalentModels(t7, t7) || mix.EquivalentModels(t7, t8) {
			b.Fatal("containment answer changed")
		}
	}
}

// BenchmarkE8DeepListInference measures inference through a 4-step path.
func BenchmarkE8DeepListInference(b *testing.B) {
	src := mix.MustDTD(d1Bench)
	q := mix.MustQuery(`papers = SELECT P WHERE <department> <gradStudent> <publication> P:<title|author/> </publication> </gradStudent> </department>`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mix.Infer(q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Generate measures random valid-document generation.
func BenchmarkE9Generate(b *testing.B) {
	src := mix.MustDTD(d1Bench)
	g, err := mix.NewGenerator(src, mix.GenOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Document()
	}
}

// BenchmarkE9Validate measures DTD validation of generated documents.
func BenchmarkE9Validate(b *testing.B) {
	src := mix.MustDTD(d1Bench)
	g, _ := mix.NewGenerator(src, mix.GenOptions{Seed: 1})
	docs := make([]*mix.Document, 32)
	for i := range docs {
		docs[i] = g.Document()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Validate(docs[i%len(docs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9SDTDSatisfies measures strict s-DTD satisfaction of view
// documents (the tag-consistent parse).
func BenchmarkE9SDTDSatisfies(b *testing.B) {
	src := mix.MustDTD(d1Bench)
	q := mix.MustQuery(q2Bench)
	res, err := mix.Infer(q, src)
	if err != nil {
		b.Fatal(err)
	}
	g, _ := mix.NewGenerator(src, mix.GenOptions{Seed: 2, AssignIDs: true, LengthBias: 0.2})
	views := make([]*mix.Document, 16)
	for i := range views {
		v, err := mix.Eval(q, g.Document())
		if err != nil {
			b.Fatal(err)
		}
		views[i] = v
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := res.SDTD.Satisfies(views[i%len(views)]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEval is the E10 core: evaluation with or without simplification.
func benchEval(b *testing.B, simplify bool) {
	src := mix.MustDTD(d1Bench)
	q := mix.MustQuery(`v = SELECT X WHERE <department>
	  X:<professor><firstName/><teaches/><publication><title/><author/></publication></professor>
	</department>`)
	run := q
	if simplify {
		sq, _, err := mix.SimplifyQuery(q, src)
		if err != nil {
			b.Fatal(err)
		}
		run = sq
	}
	g, _ := mix.NewGenerator(src, mix.GenOptions{Seed: 3, AssignIDs: true, LengthBias: 0.15})
	docs := make([]*mix.Document, 16)
	for i := range docs {
		docs[i] = g.Document()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mix.EvalElements(run, docs[i%len(docs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10EvalBaseline is the TSIMMIS-style schemaless evaluation.
func BenchmarkE10EvalBaseline(b *testing.B) { benchEval(b, false) }

// BenchmarkE10EvalSimplified evaluates after DTD-based simplification.
func BenchmarkE10EvalSimplified(b *testing.B) { benchEval(b, true) }

// BenchmarkE10Simplify measures the simplifier itself (paid once per
// query, amortized over every document it runs on).
func BenchmarkE10Simplify(b *testing.B) {
	src := mix.MustDTD(d1Bench)
	q := mix.MustQuery(q2Bench)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := mix.SimplifyQuery(q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11UnionView measures multi-source view registration (per-part
// inference + s-DTD union + merge) across 8 heterogeneous sites.
func BenchmarkE11UnionView(b *testing.B) {
	const sites = 8
	type sitePack struct {
		name string
		doc  *mix.Document
		dtd  *mix.DTD
		q    *mix.Query
	}
	packs := make([]sitePack, sites)
	for i := range packs {
		root := fmt.Sprintf("site%d", i)
		member := fmt.Sprintf("kind%d", i%3)
		d := mix.MustDTD(fmt.Sprintf(`<!DOCTYPE %[1]s [
		  <!ELEMENT %[1]s (%[2]s*)>
		  <!ELEMENT %[2]s (fullName, publication*)>
		  <!ELEMENT publication (title, (journal|conference))>
		  <!ELEMENT fullName (#PCDATA)> <!ELEMENT title (#PCDATA)>
		  <!ELEMENT journal (#PCDATA)> <!ELEMENT conference (#PCDATA)>
		]>`, root, member))
		g, err := mix.NewGenerator(d, mix.GenOptions{Seed: int64(i), AssignIDs: true})
		if err != nil {
			b.Fatal(err)
		}
		packs[i] = sitePack{
			name: root, doc: g.Document(), dtd: d,
			q: mix.MustQuery(fmt.Sprintf(`SELECT X WHERE <%s> X:<%s><publication/></%s> </%s>`, root, member, member, root)),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mix.NewMediator("bench")
		var parts []mix.ViewPart
		for _, p := range packs {
			src, err := mix.NewStaticSource(p.name, p.doc, p.dtd)
			if err != nil {
				b.Fatal(err)
			}
			if err := m.AddSource(src); err != nil {
				b.Fatal(err)
			}
			parts = append(parts, mix.ViewPart{Source: p.name, Query: p.q})
		}
		if _, err := m.DefineUnionView("all", parts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12 sweeps the inference scalability axes of experiment E12.
func BenchmarkE12(b *testing.B) {
	for _, siblings := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("siblings-%d", siblings), func(b *testing.B) {
			src := mix.MustDTD(d1Bench)
			// k same-name sibling publication conditions.
			qs := `v = SELECT X WHERE <department> X:<professor>`
			for i := 0; i < siblings; i++ {
				qs += fmt.Sprintf(` <publication id=I%d><journal/></publication>`, i)
			}
			qs += ` </professor> </department>`
			for i := 1; i < siblings; i++ {
				qs += fmt.Sprintf(" AND I0 != I%d", i)
			}
			q := mix.MustQuery(qs)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mix.Infer(q, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, depth := range []int{2, 6, 12} {
		b.Run(fmt.Sprintf("pathdepth-%d", depth), func(b *testing.B) {
			dtdText := "<!DOCTYPE n0 [\n"
			for i := 0; i < depth; i++ {
				dtdText += fmt.Sprintf("  <!ELEMENT n%d (n%d+)>\n", i, i+1)
			}
			dtdText += fmt.Sprintf("  <!ELEMENT n%d (#PCDATA)>\n]>", depth)
			src := mix.MustDTD(dtdText)
			qs := "v = SELECT P WHERE "
			for i := 0; i < depth; i++ {
				qs += fmt.Sprintf("<n%d> ", i)
			}
			qs += fmt.Sprintf("P:<n%d/> ", depth)
			for i := 0; i < depth; i++ {
				qs += "</> "
			}
			q := mix.MustQuery(qs)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mix.Infer(q, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTighterDecision measures the whole-DTD tightness decision.
func BenchmarkTighterDecision(b *testing.B) {
	src := mix.MustDTD(d1Bench)
	q := mix.MustQuery(q2Bench)
	res, err := mix.Infer(q, src)
	if err != nil {
		b.Fatal(err)
	}
	naive, err := mix.NaiveInfer(q, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := mix.Tighter(res.DTD, naive); !ok {
			b.Fatal("tightness answer changed")
		}
	}
}

// BenchmarkParseDocument measures the XML front end on a generated
// document serialized with its DTD.
func BenchmarkParseDocument(b *testing.B) {
	src := mix.MustDTD(d1Bench)
	g, _ := mix.NewGenerator(src, mix.GenOptions{Seed: 4, LengthBias: 0.2})
	text := mix.MarshalDocument(g.Document(), src, 2)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := mix.ParseDocument(text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13Compose measures the composition rewrite itself.
func BenchmarkE13Compose(b *testing.B) {
	viewDef := mix.MustQuery(`members = SELECT M WHERE <department><name>CS</name> M:<professor|gradStudent/> </department>`)
	q := mix.MustQuery(`titles = SELECT T WHERE <members> <professor|gradStudent> <publication> T:<title/> </publication> </> </members>`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mix.ComposeQuery(viewDef, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13MaterializeVsCompose compares answering a view query via
// materialization against the composed direct plan.
func BenchmarkE13MaterializeVsCompose(b *testing.B) {
	src := mix.MustDTD(d1Bench)
	viewDef := mix.MustQuery(`members = SELECT M WHERE <department><name>CS</name> M:<professor|gradStudent/> </department>`)
	q := mix.MustQuery(`profs = SELECT X WHERE <members> X:<professor><teaches/></professor> </members>`)
	composed, err := mix.ComposeQuery(viewDef, q)
	if err != nil {
		b.Fatal(err)
	}
	g, _ := mix.NewGenerator(src, mix.GenOptions{Seed: 12, AssignIDs: true, LengthBias: 0.15})
	docs := make([]*mix.Document, 8)
	for i := range docs {
		docs[i] = g.Document()
	}
	b.Run("materialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			view, err := mix.Eval(viewDef, docs[i%len(docs)])
			if err != nil {
				b.Fatal(err)
			}
			if _, err := mix.EvalElements(q, view); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("composed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mix.EvalElements(composed, docs[i%len(docs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDataguidePruning compares TSIMMIS-style path-query evaluation
// with and without the dataguide satisfiability pre-check ([GW97]) — the
// schemaless world's analogue of E10's DTD-based simplification.
func BenchmarkDataguidePruning(b *testing.B) {
	src := mix.MustDTD(d1Bench)
	// A large instance: pruning pays off in proportion to the data the
	// walk would touch (on tiny documents the guide check costs more than
	// the walk — the benchmark shows the crossover is quickly passed).
	g, _ := mix.NewGenerator(src, mix.GenOptions{Seed: 21, LengthBias: 0.02})
	root := g.Document().Root
	for i := 0; i < 6; i++ { // widen the department substantially
		more := g.Document().Root
		root.Children = append(root.Children, more.Children...)
	}
	obj := mix.OEMFromXML(root)
	dg, err := mix.BuildDataGuide(obj)
	if err != nil {
		b.Fatal(err)
	}
	dead, err := mix.ParsePath("department.professor.course")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("no-guide", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := dead.Eval(obj); len(got) != 0 {
				b.Fatal("dead path matched")
			}
		}
	})
	b.Run("guide-pruned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := dead.EvalWithGuide(obj, dg); got != nil {
				b.Fatal("dead path matched")
			}
		}
	})
}
