# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet race bench bench-compare experiments cover clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

# Tier-1 verification; `make race` is the concurrency-hardened variant of
# the same suite (vet + race-enabled tests) and should be run alongside it
# whenever the serving path changes. The `./...` pattern covers every
# package, including internal/automata (compiler singleflight hammer) and
# internal/automata/cache (LRU hammer) — the tests that only prove
# anything under -race.
test:
	go test ./...

race:
	go vet ./...
	go test -race ./...

bench:
	go test -bench=. -benchmem ./

# Archive the compiled-automata cache benchmarks (cold vs warm, setKey
# legacy vs current) as machine-readable JSON, including the cold/warm
# speedup factors. Compare BENCH_automata.json across commits to track the
# cache's figure of merit.
bench-compare:
	go test -run '^$$' -bench . -benchmem ./internal/automata | go run ./cmd/benchjson | tee BENCH_automata.json

# Regenerate every paper artifact (EXPERIMENTS.md).
experiments:
	go run ./cmd/mixbench

experiments-quick:
	go run ./cmd/mixbench -quick

cover:
	go test -coverprofile=/tmp/mix.cover ./... && go tool cover -func=/tmp/mix.cover | tail -1

# The artifacts requested by the reproduction protocol.
outputs:
	go test ./... 2>&1 | tee test_output.txt
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
