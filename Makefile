# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet lint race fault fuzz check bench bench-compare bench-prune bench-stream bench-serve bench-cluster load-smoke chaos cluster-smoke experiments cover clean fmt ci

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

# Static analysis beyond vet. staticcheck is not vendored (no new module
# dependencies); the target uses an installed binary when present and
# otherwise runs it via `go run` (network download), which is what the CI
# lint job does.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		go run honnef.co/go/tools/cmd/staticcheck@2025.1 ./...; \
	fi

# Tier-1 verification; `make race` is the concurrency-hardened variant of
# the same suite (vet + race-enabled tests) and should be run alongside it
# whenever the serving path changes. The `./...` pattern covers every
# package, including internal/automata (compiler singleflight hammer) and
# internal/automata/cache (LRU hammer) — the tests that only prove
# anything under -race.
test:
	go test ./...

race:
	go vet ./...
	go test -race ./...

# Robustness battery: fault injection (wire faults, scripted source
# failures), circuit-breaker state machine, budget degradation, and the
# panic-isolation fan-out tests, all under -race. These suites exercise
# scheduling-sensitive paths (singleflight teardown, breaker probes,
# concurrent fault scripts), so the race detector is mandatory here.
fault:
	go test -race -run 'Fault|Breaker|Degrad|FanOut|Panic|Budget' \
		./internal/mediator/ ./internal/infer/ ./internal/tightness/ \
		./internal/automata/... ./internal/serve/ ./internal/budget/ \
		./internal/load/

# Short, bounded runs of every fuzz target against the parsers. Each
# target gets FUZZTIME (default 10s); crashes land in testdata/fuzz as
# usual and should be committed as regression seeds.
FUZZTIME ?= 10s
fuzz:
	go test -run '^$$' -fuzz '^FuzzParseDocument$$' -fuzztime $(FUZZTIME) ./
	go test -run '^$$' -fuzz '^FuzzParseDTD$$' -fuzztime $(FUZZTIME) ./
	go test -run '^$$' -fuzz '^FuzzParseQuery$$' -fuzztime $(FUZZTIME) ./
	go test -run '^$$' -fuzz '^FuzzParseContentModel$$' -fuzztime $(FUZZTIME) ./

# Everything a change should pass before review: tier-1 build/vet/test,
# staticcheck, the -race suite, the -race robustness battery, and bounded
# fuzzing of the parsers — the same gates the CI workflow's blocking jobs
# run (ci.yml: test, lint, race, fault), so a green `make check` predicts
# a green CI run up to the long campaigns (cover/load-smoke/chaos/
# cluster-smoke, which `make ci` adds).
check: all lint race fault
	$(MAKE) fuzz FUZZTIME=5s

bench:
	go test -bench=. -benchmem ./

# Archive the compiled-automata cache benchmarks (cold vs warm, setKey
# legacy vs current) as machine-readable JSON, including the cold/warm
# speedup factors. Compare BENCH_automata.json across commits to track the
# cache's figure of merit.
bench-compare:
	go test -run '^$$' -bench . -benchmem ./internal/automata | go run ./cmd/benchjson | tee BENCH_automata.json

# Archive the query-time pruning benchmarks (Cold = pruning disabled,
# every source fetched; Warm = pruning enabled, provably-irrelevant
# sources skipped) as JSON with the cold/warm speedup factor. Compare
# BENCH_prune.json across commits to track pruning's figure of merit.
bench-prune:
	go test -run '^$$' -bench BenchmarkPruneUnionQuery -benchmem ./internal/mediator | go run ./cmd/benchjson | tee BENCH_prune.json

# Archive the streaming-validation and delta-maintenance benchmarks
# (ValidateDoc: Cold = tree parse + validate, Warm = streaming validator;
# InvalidateMix: Cold = global invalidate, Warm = per-source delta
# invalidate) as JSON with the cold/warm speedup factors. Compare
# BENCH_stream.json across commits — `benchjson -compare old.json
# new.json` is the mechanical ratchet.
bench-stream:
	go test -run '^$$' -bench 'BenchmarkValidateDoc|BenchmarkInvalidateMix' -benchmem \
		./internal/dtd ./internal/mediator | go run ./cmd/benchjson | tee BENCH_stream.json

# Sustained-load SLO run (cmd/mixload): a deterministic open-loop mixed
# operation stream over a synthesized XMark-class fleet, asserted against
# p95/p99/error-rate/degradation SLOs and archived as BENCH_serve.json.
# Compare across commits to track the serving path's figure of merit.
bench-serve:
	go run ./cmd/mixload -seed 1 -rps 150 -duration 30s -out BENCH_serve.json

# Bounded smoke of the same harness for every push: ~10s of traffic plus a
# pruning-soundness comparison run, exit nonzero on any SLO violation.
load-smoke:
	go run ./cmd/mixload -seed 1 -rps 120 -duration 10s -prune-compare -quiet

# Replica chaos campaign (cmd/mixload -chaos): a replicated 3×3 fleet
# driven through baseline → flapping-replica → total-blackout → recovery
# phases, asserted against the failover SLOs (flap: zero errors, p99 ≤ 2×
# baseline; blackout: stale-served, DTD-valid answers under the retry
# budget's upstream ceiling; recovery: fresh answers again) and archived
# as CHAOS_report.json. Blocking in CI.
chaos:
	go run ./cmd/mixload -chaos -seed 1 -rps 120 -chaos-phase 2s -out CHAOS_report.json

# Multi-node cluster smoke (cmd/mixload -cluster): an in-process 3-node
# mediator fleet sharing one consistent-hash ring over 4 sharded views
# (one replicated), asserted against the distribution contract — every
# endpoint of every node answers bit-identical to a single-node mediator
# over the same sources, zero errors under load, and killing one node
# leaves non-owned views serving with zero errors, fails replicated views
# over, and turns orphaned views into clean 502s (never hangs). Archived
# as CLUSTER_report.json. Blocking in CI.
cluster-smoke:
	go run ./cmd/mixload -cluster -seed 1 -rps 100 -cluster-phase 2s -out CLUSTER_report.json

# Archive the cluster-tier benchmarks (ForwardHop: Cold = first forwarded
# request, peer transport built from scratch including the owner DTD round
# trip; Warm = cached transport, one owner round trip; RingOwner[sRep...]:
# view-to-owner lookups) as JSON with the cold/warm factor. Compare
# BENCH_cluster.json across commits to track the forward hop's overhead.
bench-cluster:
	go test -run '^$$' -bench 'BenchmarkForwardHop|BenchmarkRingOwner' -benchmem \
		./internal/cluster ./internal/serve | go run ./cmd/benchjson | tee BENCH_cluster.json

# Regenerate every paper artifact (EXPERIMENTS.md).
experiments:
	go run ./cmd/mixbench

experiments-quick:
	go run ./cmd/mixbench -quick

# Coverage with a ratchet: the total must not fall below the checked-in
# COVERAGE_BASELINE (percent). Raise the baseline when coverage genuinely
# improves; never lower it to make a change pass.
COVERPROFILE ?= /tmp/mix.cover
cover:
	go test -coverprofile=$(COVERPROFILE) ./...
	@total=$$(go tool cover -func=$(COVERPROFILE) | tail -1 | awk '{gsub(/%/, "", $$NF); print $$NF}'); \
	floor=$$(cat COVERAGE_BASELINE); \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { \
		if (t + 0 < f + 0) { printf "FAIL: coverage %.1f%% is below baseline %.1f%%\n", t, f; exit 1 } \
		printf "coverage %.1f%% (baseline %.1f%%)\n", t, f }'

# Rewrite every file gofmt would flag; `ci` only checks.
fmt:
	gofmt -l -w .

# What the CI workflow runs, invocable locally before pushing: the gofmt
# gate, tier-1 build/vet/test, the -race suite, the fault-injection
# battery, the coverage floor, the bounded load smoke, the replica chaos
# campaign, and the multi-node cluster smoke.
ci:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(MAKE) all
	$(MAKE) race
	$(MAKE) fault
	$(MAKE) cover
	$(MAKE) load-smoke
	$(MAKE) chaos
	$(MAKE) cluster-smoke

# The artifacts requested by the reproduction protocol.
outputs:
	go test ./... 2>&1 | tee test_output.txt
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
