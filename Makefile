# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet race bench experiments cover clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

# Tier-1 verification; `make race` is the concurrency-hardened variant of
# the same suite (vet + race-enabled tests) and should be run alongside it
# whenever the serving path changes.
test:
	go test ./...

race:
	go vet ./...
	go test -race ./...

bench:
	go test -bench=. -benchmem ./

# Regenerate every paper artifact (EXPERIMENTS.md).
experiments:
	go run ./cmd/mixbench

experiments-quick:
	go run ./cmd/mixbench -quick

cover:
	go test -coverprofile=/tmp/mix.cover ./... && go tool cover -func=/tmp/mix.cover | tail -1

# The artifacts requested by the reproduction protocol.
outputs:
	go test ./... 2>&1 | tee test_output.txt
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
