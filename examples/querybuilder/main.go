// Schema-guided query building: what the MIX "DTD-based query interface"
// does for a user, done programmatically. The DTD outline shows the
// structure with exact occurrence bounds; the builder validates every path
// step (a wrong step reports the legal alternatives, like a menu); the
// built query is Q2 from the paper, byte-for-byte equivalent in effect.
package main

import (
	"fmt"
	"log"

	mix "repro"
)

const d1 = `<!DOCTYPE department [
  <!ELEMENT department (name, professor+, gradStudent+, course*)>
  <!ELEMENT professor (firstName, lastName, publication+, teaches)>
  <!ELEMENT gradStudent (firstName, lastName, publication+)>
  <!ELEMENT publication (title, author+, (journal|conference))>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT firstName (#PCDATA)>
  <!ELEMENT lastName (#PCDATA)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT journal (#PCDATA)>
  <!ELEMENT conference (#PCDATA)>
  <!ELEMENT course (#PCDATA)>
  <!ELEMENT teaches (#PCDATA)>
]>`

func main() {
	src := mix.MustDTD(d1)

	// 1. What the user sees: the schema as a tree with occurrence bounds.
	fmt.Println("== source structure (what the DTD-based interface displays)")
	fmt.Print(mix.OutlineDTD(src))

	// 2. A wrong step is caught with the legal menu.
	_, err := mix.NewQueryBuilder(src).Pick("department/student").Build("v")
	fmt.Printf("\n== a wrong path step is guided:\n  %v\n", err)

	// 3. Build the paper's Q2 from schema paths.
	q, err := mix.NewQueryBuilder(src).
		Pick("department/professor|gradStudent").
		WhereText("department/name", "CS").
		WhereAtLeast("department/professor|gradStudent/publication/journal", 2).
		Build("withJournals")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== built query (the paper's Q2)")
	fmt.Println(q)

	// 4. The interface immediately shows the structure of the RESULT too:
	// that is exactly what view DTD inference is for.
	res, err := mix.Infer(q, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== structure of the view (inferred view DTD, outlined)")
	fmt.Print(mix.OutlineDTD(res.DTD))
	fmt.Printf("\nclassification: %s\n", res.Class)
}
