// Schema discovery comparison (the paper's Section 5): summarize the same
// data with a strong dataguide (Goldman–Widom, the schemaless world's best
// tool) and compare it against the actual DTD — making concrete what
// dataguides lose (order, cardinality, sibling constraints) and what they
// share with specialized DTDs (same-name nodes with different types).
package main

import (
	"fmt"
	"log"

	mix "repro"
)

const catalogDTD = `<!DOCTYPE catalog [
  <!ELEMENT catalog (vendor+, product+)>
  <!ELEMENT vendor (vname, rating?)>
  <!ELEMENT product (pname, price, (new|used))>
  <!ELEMENT vname (#PCDATA)>
  <!ELEMENT rating (#PCDATA)>
  <!ELEMENT pname (#PCDATA)>
  <!ELEMENT price (#PCDATA)>
  <!ELEMENT new (#PCDATA)>
  <!ELEMENT used (#PCDATA)>
]>`

func main() {
	d := mix.MustDTD(catalogDTD)
	g, err := mix.NewGenerator(d, mix.GenOptions{Seed: 5, LengthBias: 0.3})
	if err != nil {
		log.Fatal(err)
	}

	// Summarize a corpus of documents with one dataguide.
	var objs []*mix.OEMObject
	elems := 0
	for i := 0; i < 25; i++ {
		doc := g.Document()
		elems += doc.Root.Size()
		objs = append(objs, mix.OEMFromXML(doc.Root))
	}
	dg, err := mix.BuildDataGuide(objs...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataguide over %d documents (%d elements), %d label paths:\n", len(objs), elems, len(dg.Paths()))
	for _, p := range dg.Paths() {
		fmt.Println("  ", p)
	}

	guideSDTD := dg.ToSDTD()
	fmt.Println("\ndataguide rendered as a specialized DTD (Section 5: dataguides")
	fmt.Println("are s-DTD-like — same-label nodes may have different types):")
	fmt.Println(guideSDTD)

	guideDTD, events, err := dg.ToDTD()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmerged into a plain DTD:")
	fmt.Println(guideDTD)
	for _, ev := range events {
		fmt.Println("  merge:", ev)
	}

	// Compare against the true schema.
	fmt.Println("\ncomparison with the actual DTD (Definition 3.2):")
	ab, _ := mix.Tighter(d, guideDTD)
	ba, w := mix.Tighter(guideDTD, d)
	fmt.Printf("  true DTD ⊆ dataguide schema: %v\n", ab)
	fmt.Printf("  dataguide schema ⊆ true DTD: %v\n", ba)
	if w != nil {
		fmt.Printf("  witness (allowed by dataguide, impossible under the DTD): %s\n", w)
	}

	// The concrete losses, demonstrated:
	scrambled, err := mix.ParseElement(`<catalog>
	  <product><pname>p</pname><price>1</price><new>y</new></product>
	  <vendor><vname>v</vname></vendor>
	</catalog>`)
	if err != nil {
		log.Fatal(err)
	}
	sd := &mix.Document{DocType: "catalog", Root: scrambled}
	fmt.Printf("\nproduct-before-vendor document: dataguide accepts: %v, DTD accepts: %v\n",
		guideDTD.Validate(sd) == nil, d.Validate(sd) == nil)
	fmt.Println("  → order and cardinality are invisible to dataguides (Section 5)")
}
