// Distributed mediator stacking over HTTP: a campus mediator serves a view
// (with its inferred DTD) on a local port; a portal mediator in another
// "process boundary" registers that remote view as a source via its URL,
// infers its own view DTD from the remote's inferred DTD, and answers
// queries — including one it can refuse without any network round trip.
// This is the paper's "lower level mediators provide their view DTDs to
// the higher level ones", with the views living at URLs as Section 2.1
// prescribes.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	mix "repro"
	"repro/internal/mediator"
	"repro/internal/serve"
)

const d1 = `<!DOCTYPE department [
  <!ELEMENT department (name, professor+, gradStudent+, course*)>
  <!ELEMENT professor (firstName, lastName, publication+, teaches)>
  <!ELEMENT gradStudent (firstName, lastName, publication+)>
  <!ELEMENT publication (title, author+, (journal|conference))>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT firstName (#PCDATA)>
  <!ELEMENT lastName (#PCDATA)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT journal (#PCDATA)>
  <!ELEMENT conference (#PCDATA)>
  <!ELEMENT course (#PCDATA)>
  <!ELEMENT teaches (#PCDATA)>
]>`

func main() {
	// --- lower mediator: the campus ---
	campus := mix.NewMediator("campus")
	src := mix.MustDTD(d1)
	g, err := mix.NewGenerator(src, mix.GenOptions{Seed: 17, AssignIDs: true, LengthBias: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	deptDoc := g.Document()
	wrapped, err := mix.NewStaticSource("cs-dept", deptDoc, src)
	if err != nil {
		log.Fatal(err)
	}
	if err := campus.AddSource(wrapped); err != nil {
		log.Fatal(err)
	}
	view, err := campus.DefineView("cs-dept", mix.MustQuery(
		`members = SELECT X WHERE <department> X:<professor|gradStudent/> </department>`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campus mediator: view %q inferred (class %s)\n", view.Name, view.Class)

	// Serve it on an ephemeral local port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	var med *mediator.Mediator = campus
	go func() { _ = http.Serve(ln, serve.New(med)) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("campus mediator serving at %s/views/members\n\n", base)

	// --- upper mediator: the portal, in another process in real life ---
	remote, err := mix.NewHTTPSource(nil, base, "members")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("portal registered remote source %s\n", remote.Name())
	fmt.Println("remote view DTD (inferred by the lower mediator, fetched over HTTP):")
	fmt.Println(remote.Schema())

	portal := mix.NewMediator("portal")
	if err := portal.AddSource(remote); err != nil {
		log.Fatal(err)
	}
	pv, err := portal.DefineView(remote.Name(), mix.MustQuery(
		`busyProfs = SELECT X WHERE <members> X:<professor><publication/><teaches/></professor> </members>`))
	if err != nil {
		log.Fatal(err)
	}
	doc, err := portal.Materialize(context.Background(), "busyProfs")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nportal view 'busyProfs': %d professors; satisfies its inferred DTD: %v\n",
		len(doc.Root.Children), pv.DTD.Validate(doc) == nil)

	// DTD knowledge crosses the network: an impossible query is answered
	// locally, with zero HTTP requests.
	res, stats, err := portal.Query(context.Background(), "busyProfs", mix.MustQuery(
		`none = SELECT X WHERE <busyProfs> X:<course/> </busyProfs>`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query for courses in busyProfs: %d results, answered without data access: %v\n",
		len(res.Root.Children), stats.SkippedUnsatisfiable)
}
