// The paper's running example, end to end: the department DTD (D1), the
// withJournals view (Q2), the publist view (Q3), and the student-papers
// view (Q12) — inferring tight view DTDs, demonstrating the structural
// non-tightness of plain DTDs and how specialized DTDs recover it, and
// checking soundness on a generated corpus.
package main

import (
	"fmt"
	"log"

	mix "repro"
)

const d1 = `<!DOCTYPE department [
  <!ELEMENT department (name, professor+, gradStudent+, course*)>
  <!ELEMENT professor (firstName, lastName, publication+, teaches)>
  <!ELEMENT gradStudent (firstName, lastName, publication+)>
  <!ELEMENT publication (title, author+, (journal|conference))>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT firstName (#PCDATA)>
  <!ELEMENT lastName (#PCDATA)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT journal (#PCDATA)>
  <!ELEMENT conference (#PCDATA)>
  <!ELEMENT course (#PCDATA)>
  <!ELEMENT teaches (#PCDATA)>
]>`

const q2 = `withJournals =
SELECT P
WHERE <department><name>CS</name>
        P:<professor|gradStudent>
           <publication id=Pub1><journal/></publication>
           <publication id=Pub2><journal/></publication>
        </>
      </department>
AND Pub1 != Pub2`

const q3 = `publist =
SELECT P
WHERE <department><name>CS</name>
        <professor|gradStudent>
          P:<publication><journal/></publication>
        </>
      </department>`

func main() {
	src, err := mix.ParseDTD(d1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Example 3.1/3.4: the withJournals view (Q2)")
	wj, err := mix.Infer(mix.MustQuery(q2), src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("specialized view DTD (tight — note publication^1, journal papers only):")
	fmt.Println(wj.SDTD)
	fmt.Println("\nplain view DTD (after Merge; the journal-only constraint is lost):")
	fmt.Println(wj.DTD)
	fmt.Println("\nmerge signals (Section 4.3 requires informing the user):")
	for _, ev := range wj.Merges {
		fmt.Println(" ", ev)
	}

	fmt.Println("\n== Example 3.2: the publist view (Q3) — disjunction removal")
	pl, err := mix.Infer(mix.MustQuery(q3), src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(pl.DTD)

	fmt.Println("\n== Soundness (Definition 3.1), sampled")
	for _, v := range []struct {
		name string
		q    string
		res  *mix.InferResult
	}{{"withJournals", q2, wj}, {"publist", q3, pl}} {
		rep, err := mix.CheckSoundness(mix.MustQuery(v.q), src, v.res.DTD, v.res.SDTD, 200, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %d trials, %d violations\n", v.name, rep.Trials, rep.Violations)
	}

	fmt.Println("\n== A concrete department and its views")
	g, err := mix.NewGenerator(src, mix.GenOptions{Seed: 11, AssignIDs: true, LengthBias: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	doc := g.Document()
	fmt.Printf("generated department with %d elements\n", doc.Root.Size())
	view, err := mix.Eval(mix.MustQuery(q3), doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("publist view has %d publications; satisfies its DTD: %v\n",
		len(view.Root.Children), pl.DTD.Validate(view) == nil)

	fmt.Println("\n== Tightness comparison (Definition 3.2)")
	naive, err := mix.NaiveInfer(mix.MustQuery(q2), src)
	if err != nil {
		log.Fatal(err)
	}
	tight, _ := mix.Tighter(wj.DTD, naive)
	loose, _ := mix.Tighter(naive, wj.DTD)
	fmt.Printf("inferred ⊆ naive: %v;  naive ⊆ inferred: %v  (strictly tighter: %v)\n",
		tight, loose, tight && !loose)
}
