// Quickstart: infer a view DTD from a source DTD and a XMAS view
// definition, evaluate the view, and confirm the result satisfies the
// inferred DTD — the core loop of the MIX mediator in ~60 lines.
package main

import (
	"fmt"
	"log"

	mix "repro"
)

const sourceDTD = `<!DOCTYPE library [
  <!ELEMENT library (book+)>
  <!ELEMENT book (title, author+, (hardcover|paperback))>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT hardcover (#PCDATA)>
  <!ELEMENT paperback (#PCDATA)>
]>`

const view = `hardcovers =
SELECT B
WHERE <library> B:<book><hardcover/></book> </library>`

const document = `<library>
  <book><title>A Relational Model</title><author>Codd</author><hardcover>1st</hardcover></book>
  <book><title>Mediators</title><author>Wiederhold</author><paperback>2nd</paperback></book>
  <book><title>TSIMMIS</title><author>Garcia-Molina</author><author>Papakonstantinou</author><hardcover>3rd</hardcover></book>
</library>`

func main() {
	src, err := mix.ParseDTD(sourceDTD)
	if err != nil {
		log.Fatal(err)
	}
	q, err := mix.ParseQuery(view)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Infer the view DTD (the paper's Section 4 algorithms).
	res, err := mix.Infer(q, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inferred view DTD:")
	fmt.Println(res.DTD)
	fmt.Printf("classification: %s\n\n", res.Class)
	// Note what the inference discovered: hardcovers-only books — the
	// (hardcover|paperback) disjunction is gone (Example 3.2's
	// "disjunction removal") — and the view may be empty (book*).

	// 2. Evaluate the view.
	doc, _, err := mix.ParseDocument(document)
	if err != nil {
		log.Fatal(err)
	}
	out, err := mix.Eval(q, doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("view document:")
	fmt.Print(mix.MarshalDocument(out, nil, 2))

	// 3. Soundness in action: the result always satisfies the view DTD.
	if err := res.DTD.Validate(out); err != nil {
		log.Fatalf("soundness violation (bug): %v", err)
	}
	fmt.Println("\nview document satisfies the inferred DTD ✓")
}
