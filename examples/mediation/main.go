// Mediation at scale: the paper's Section 1 scenario. A portal mediator
// unions "prolific researcher" views over many departmental sites (each
// with its own DTD and generated data), infers a precise union view DTD, a
// second mediator stacks on top of the first using the inferred DTD as its
// source schema, and incoming queries are simplified against view DTDs —
// including one answered without touching any data at all.
package main

import (
	"context"
	"fmt"
	"log"

	mix "repro"
)

// siteDTD parametrizes a per-site schema; sites disagree about member
// element names and optional extras, as real sites would.
func siteDTD(root, member string, hasGrant bool) string {
	extra, decl := "", ""
	if hasGrant {
		extra = ", grant?"
		decl = "\n  <!ELEMENT grant (#PCDATA)>"
	}
	return fmt.Sprintf(`<!DOCTYPE %[1]s [
  <!ELEMENT %[1]s (%[2]s*)>
  <!ELEMENT %[2]s (fullName, publication*%[3]s)>
  <!ELEMENT publication (title, (journal|conference))>
  <!ELEMENT fullName (#PCDATA)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT journal (#PCDATA)>
  <!ELEMENT conference (#PCDATA)>%[4]s
]>`, root, member, extra, decl)
}

func main() {
	portal := mix.NewMediator("portal")
	members := []string{"researcher", "scientist", "fellow", "member", "staff"}
	var parts []mix.ViewPart
	totalElems := 0
	const sites = 20
	for i := 0; i < sites; i++ {
		root := fmt.Sprintf("site%d", i)
		member := members[i%len(members)]
		d := mix.MustDTD(siteDTD(root, member, i%3 == 0))
		g, err := mix.NewGenerator(d, mix.GenOptions{Seed: int64(100 + i), AssignIDs: true, LengthBias: 0.25})
		if err != nil {
			log.Fatal(err)
		}
		doc := g.Document()
		totalElems += doc.Root.Size()
		src, err := mix.NewStaticSource(root, doc, d)
		if err != nil {
			log.Fatal(err)
		}
		if err := portal.AddSource(src); err != nil {
			log.Fatal(err)
		}
		// Per-site branch: members with at least two journal papers.
		q := mix.MustQuery(fmt.Sprintf(
			`SELECT X WHERE <%s> X:<%s> <publication id=A><journal/></publication> <publication id=B><journal/></publication> </%s> </%s> AND A != B`,
			root, member, member, root))
		parts = append(parts, mix.ViewPart{Source: root, Query: q})
	}
	fmt.Printf("registered %d sites (%d elements of data)\n\n", sites, totalElems)

	view, err := portal.DefineUnionView("prolific", parts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inferred union view DTD (plain form):")
	fmt.Println(view.DTD)
	fmt.Printf("\nclassification: %s; plain-DTD merge lost tightness: %v\n",
		view.Class, view.NonTight)
	fmt.Printf("s-DTD keeps per-site member types apart: researcher has %d specialization(s)\n\n",
		len(view.SDTD.Specializations("researcher")))

	doc, err := portal.Materialize(context.Background(), "prolific")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized view: %d prolific members\n", len(doc.Root.Children))
	if err := view.DTD.Validate(doc); err != nil {
		log.Fatalf("soundness violation (bug): %v", err)
	}
	if err := view.SDTD.Satisfies(doc); err != nil {
		log.Fatalf("s-DTD soundness violation (bug): %v", err)
	}
	fmt.Println("view satisfies both inferred DTDs ✓")

	// Stacked mediator: its source schema is the inferred view DTD.
	wrapped, err := portal.AsSource("prolific")
	if err != nil {
		log.Fatal(err)
	}
	upper := mix.NewMediator("upper")
	if err := upper.AddSource(wrapped); err != nil {
		log.Fatal(err)
	}
	uv, err := upper.DefineView(wrapped.Name(),
		mix.MustQuery(`scientists = SELECT X WHERE <prolific> X:<scientist/> </prolific>`))
	if err != nil {
		log.Fatal(err)
	}
	udoc, err := upper.Materialize(context.Background(), "scientists")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstacked mediator view 'scientists': %d members, class %s\n",
		len(udoc.Root.Children), uv.Class)

	// Query simplification against the view DTD.
	q1 := mix.MustQuery(`withPub = SELECT X WHERE <prolific> X:<researcher><publication/></researcher> </prolific>`)
	res, stats, err := portal.Query(context.Background(), "prolific", q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery 'researchers with a publication': %d results; simplifier pruned %d condition(s)\n",
		len(res.Root.Children), stats.PrunedConditions)
	fmt.Println("  (every view member has ≥2 publications, so the existence test is implied by the view DTD)")

	q2 := mix.MustQuery(`odd = SELECT X WHERE <prolific> X:<course/> </prolific>`)
	res2, stats2, err := portal.Query(context.Background(), "prolific", q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query for 'course' elements: %d results; answered without touching data: %v\n",
		len(res2.Root.Children), stats2.SkippedUnsatisfiable)
}
