// Package mix is the public API of this reproduction of "Enhancing
// Semistructured Data Mediators with Document Type Definitions"
// (Papakonstantinou & Velikhov, ICDE 1999) — the MIX mediator's view-DTD
// inference, implemented in pure Go.
//
// The core workflow:
//
//	src, _ := mix.ParseDTD(dtdText)               // the source DTD
//	q, _ := mix.ParseQuery(xmasText)              // a pick-element XMAS view
//	res, _ := mix.Infer(q, src)                   // infer the view DTD
//	fmt.Println(res.SDTD)                         // specialized (tight) form
//	fmt.Println(res.DTD)                          // plain DTD (merged)
//
//	doc, _, _ := mix.ParseDocument(xmlText)       // a source document
//	view, _ := mix.Eval(q, doc)                   // materialize the view
//	err := res.DTD.Validate(view)                 // always nil: inference is sound
//
// Mediation (Section 1's architecture) lives behind NewMediator: register
// wrapped sources, define (possibly multi-source union) views — the view
// DTD is inferred at registration — and pose queries, which are first
// simplified against the view DTD (unsatisfiable queries never touch the
// data). Mediators stack via Mediator.AsSource.
//
// The formal quality notions of Section 3 are exposed too: Tighter decides
// the tightness order between DTDs, CheckSoundness samples Definition 3.1,
// and MeasureDTD / MeasureSDTD quantify structural tightness
// (Definition 3.7) by bounded enumeration.
package mix

import (
	"context"
	"io"
	"net/http"
	"time"

	"repro/internal/automata"
	"repro/internal/automata/cache"
	"repro/internal/bench"
	"repro/internal/browse"
	"repro/internal/budget"
	"repro/internal/dtd"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/infer"
	"repro/internal/mediator"
	"repro/internal/oem"
	"repro/internal/regex"
	"repro/internal/sdtd"
	"repro/internal/tightness"
	"repro/internal/xmas"
	"repro/internal/xmlmodel"
)

// Re-exported core types. Each alias points at the implementing package,
// whose documentation describes the semantics in terms of the paper.
type (
	// Document is an XML document in the paper's model (Definition 2.4).
	Document = xmlmodel.Document
	// Element is the paper's Definition 2.1 element.
	Element = xmlmodel.Element
	// DTD is a Document Type Definition (Definition 2.2).
	DTD = dtd.DTD
	// Type is one element type declaration: PCDATA or a content model.
	Type = dtd.Type
	// SDTD is a specialized DTD (Definition 3.8).
	SDTD = sdtd.SDTD
	// Name is a possibly specialization-tagged element name.
	Name = regex.Name
	// Expr is a regular expression over element names (a content model).
	Expr = regex.Expr
	// Query is a pick-element XMAS query or view definition (Section 2.1).
	Query = xmas.Query
	// Cond is one node of a tree containment condition.
	Cond = xmas.Cond
	// InferResult is the output of view DTD inference.
	InferResult = infer.Result
	// Class is the valid/satisfiable/unsatisfiable classification
	// (Section 4.2's side effect).
	Class = infer.Class
	// Mediator hosts wrapped sources and views (Section 1's architecture).
	Mediator = mediator.Mediator
	// Wrapper is a source: data plus DTD.
	Wrapper = mediator.Wrapper
	// ViewPart is one branch of a (possibly multi-source) view.
	ViewPart = mediator.ViewPart
	// MediatorStats is a snapshot of a mediator's serving counters.
	MediatorStats = mediator.Stats
	// AutomataCache is a snapshot of the compiled-automata cache counters.
	AutomataCache = cache.Stats
	// HTTPOption configures an HTTP-backed remote source.
	HTTPOption = mediator.HTTPOption
	// Generator samples random valid documents from a DTD.
	Generator = gen.Generator
	// GenOptions controls document generation.
	GenOptions = gen.Options
	// SoundnessReport summarizes a randomized Definition 3.1 check.
	SoundnessReport = tightness.SoundnessReport
	// PrecisionReport quantifies structural tightness at a size bound.
	PrecisionReport = tightness.PrecisionReport
	// TightnessWitness explains why one DTD is not tighter than another.
	TightnessWitness = tightness.Witness
	// DataGuide is a strong dataguide over OEM data (Section 5's [GW97]).
	DataGuide = oem.DataGuide
	// OEMObject is an Object Exchange Model object (the TSIMMIS model).
	OEMObject = oem.Object
	// BudgetLimits bounds inference-side automata work (wall-clock
	// deadline, DFA states, enumeration classes, refine steps); zero
	// fields are unlimited. Exhaustion degrades inference to a
	// sound-but-looser view DTD instead of failing (see InferResult's
	// Degraded fields).
	BudgetLimits = budget.Limits
	// Budget is a live, chargeable resource budget built from BudgetLimits.
	Budget = budget.Budget
	// MaterializeInfo reports whether a materialization dropped the parts
	// of breaker-open sources (degraded availability).
	MaterializeInfo = mediator.MaterializeInfo
	// BreakerOptions configures a per-source circuit breaker.
	BreakerOptions = mediator.BreakerOptions
	// ReplicaSet is a replica-aware source: health-checked failover,
	// hedged reads, a shared retry budget, and last-known-good stale
	// serving over N interchangeable (DTD-equivalent) replicas.
	ReplicaSet = mediator.ReplicaSet
	// ReplicaSetOptions configures a ReplicaSet.
	ReplicaSetOptions = mediator.ReplicaSetOptions
	// ReplicaSetStatus is a point-in-time replica-set health snapshot.
	ReplicaSetStatus = mediator.ReplicaSetStatus
	// HealthOptions configures the per-replica health state machine.
	HealthOptions = mediator.HealthOptions
	// RetryBudget is a token bucket capping retry/hedge amplification.
	RetryBudget = mediator.RetryBudget
	// RetryBudgetOptions configures a RetryBudget.
	RetryBudgetOptions = mediator.RetryBudgetOptions
	// Fault is one scripted misbehavior of a fault-injecting source.
	Fault = mediator.Fault
	// WireFault is one scripted wire-level fault of a faulty HTTP handler.
	WireFault = mediator.WireFault
)

// NewBudget builds a budget from limits; attach it to a context with
// BudgetContext and pass that to InferWithContext-style entry points.
func NewBudget(l BudgetLimits) *Budget { return budget.New(l) }

// BudgetContext attaches a budget to a context for budget-aware calls
// (infer.InferContext, tightness.EnumerateClassesContext).
func BudgetContext(ctx context.Context, b *Budget) context.Context {
	return budget.NewContext(ctx, b)
}

// NewBreakerSource guards a source with a circuit breaker: after
// consecutive fetch failures the source fails fast (ErrBreakerOpen) and
// union views are served degraded — without its parts — until a
// cooldown-spaced probe succeeds.
func NewBreakerSource(w Wrapper, opts BreakerOptions) Wrapper {
	return mediator.NewBreakerSource(w, opts)
}

// NewReplicaSet wraps N interchangeable replicas of one logical source
// (their DTDs must be equivalent — verified at registration) behind
// health-checked failover, hedged reads, a shared retry budget, and
// last-known-good stale serving. The result is a Wrapper; register it
// with Mediator.AddSource like any other source.
func NewReplicaSet(name string, replicas []Wrapper, opts ReplicaSetOptions) (*ReplicaSet, error) {
	return mediator.NewReplicaSet(name, replicas, opts)
}

// NewRetryBudget builds a token bucket that retries (WithRetryBudget) and
// hedges/failovers (ReplicaSetOptions.Budget) draw from.
func NewRetryBudget(opts RetryBudgetOptions) *RetryBudget {
	return mediator.NewRetryBudget(opts)
}

// NewFaultSource wraps a source with a deterministic scripted fault
// sequence (errors, latency) for resilience testing.
func NewFaultSource(w Wrapper, script ...Fault) Wrapper {
	return mediator.NewFaultSource(w, script...)
}

// NewFaultyHandler wraps an HTTP handler with scripted wire faults (5xx
// bursts, delays, mid-body truncation, payload corruption).
func NewFaultyHandler(h http.Handler, script ...WireFault) http.Handler {
	return mediator.NewFaultyHandler(h, script...)
}

// ErrBreakerOpen is returned by breaker-guarded sources while open.
var ErrBreakerOpen = mediator.ErrBreakerOpen

// Classification constants.
const (
	Unsatisfiable = infer.Unsatisfiable
	Satisfiable   = infer.Satisfiable
	Valid         = infer.Valid
)

// Verdict is a three-valued satisfiability verdict for a query against a
// source DTD: Unknown (fetch anyway), Unsatisfiable (a proof; prune), or
// VerdictSatisfiable. See infer.Satisfiability.
type Verdict = infer.Verdict

// Satisfiability verdict constants.
const (
	VerdictUnknown       = infer.VerdictUnknown
	VerdictUnsatisfiable = infer.VerdictUnsatisfiable
	VerdictSatisfiable   = infer.VerdictSatisfiable
)

// DTDClass identifies the tractable DTD classes (duplicate-free,
// disjunction-capsuled) on which the fast satisfiability decision
// procedure is exact; see infer.ClassifyDTD.
type DTDClass = infer.DTDClass

// DTD class constants.
const (
	ClassGeneral             = infer.ClassGeneral
	ClassDuplicateFree       = infer.ClassDuplicateFree
	ClassDisjunctionCapsuled = infer.ClassDisjunctionCapsuled
)

// Satisfiability decides whether any document valid under src can match
// the query: the verdict backing query-time per-part pruning. Budget
// exhaustion (attach one with BudgetContext) yields VerdictUnknown.
func Satisfiability(ctx context.Context, q *Query, src *DTD) Verdict {
	return infer.Satisfiability(ctx, q, src)
}

// SatisfiabilityCached is Satisfiability through the process-wide verdict
// cache (VerdictUnknown is never cached); the second result reports a hit.
func SatisfiabilityCached(ctx context.Context, q *Query, src *DTD) (Verdict, bool) {
	return infer.SatisfiabilityCached(ctx, q, src)
}

// ClassifyDTD reports the DTD's tractable class.
func ClassifyDTD(d *DTD) DTDClass { return infer.ClassifyDTD(d) }

// SatisfiabilityCacheStats snapshots the process-wide satisfiability-
// verdict cache counters (mediator.Stats embeds the same snapshot as
// PruneVerdictCache).
func SatisfiabilityCacheStats() AutomataCache { return infer.SatisfiabilityCacheStats() }

// PurgeSatisfiabilityCache drops every cached satisfiability verdict
// (counters are kept); call it after schema churn.
func PurgeSatisfiabilityCache() { infer.PurgeSatisfiabilityCache() }

// ErrRecursivePath is returned by Infer for views with recursive path
// expressions (Section 4.4, footnote 9).
var ErrRecursivePath = infer.ErrRecursivePath

// ParseDocument parses an XML document; when it carries a DOCTYPE with an
// internal subset the DTD is parsed too (nil otherwise).
func ParseDocument(input string) (*Document, *DTD, error) {
	return dtd.ParseDocument(input)
}

// ParseElement parses a single XML element.
func ParseElement(input string) (*Element, error) {
	return xmlmodel.ParseElement(input)
}

// MarshalDocument serializes a document, with its DTD inlined as a DOCTYPE
// internal subset when d is non-nil. Negative indent means compact output.
func MarshalDocument(doc *Document, d *DTD, indent int) string {
	return dtd.MarshalDocument(doc, d, indent)
}

// ParseDTD parses a "<!DOCTYPE root [ ... ]>" declaration.
func ParseDTD(input string) (*DTD, error) { return dtd.Parse(input) }

// ParseQuery parses a pick-element XMAS query in the paper's syntax.
func ParseQuery(input string) (*Query, error) { return xmas.Parse(input) }

// MustQuery is ParseQuery that panics on error; for examples and tests.
func MustQuery(input string) *Query { return xmas.MustParse(input) }

// MustDTD is ParseDTD that panics on error; for examples and tests.
func MustDTD(input string) *DTD {
	d, err := dtd.Parse(input)
	if err != nil {
		panic(err)
	}
	return d
}

// ParseContentModel parses a content-model expression (DTD syntax,
// optionally with ^tags for specialized DTDs).
func ParseContentModel(input string) (Expr, error) { return regex.Parse(input) }

// Infer derives the view DTD — specialized and plain — for a pick-element
// view over the source DTD (Section 4).
func Infer(q *Query, src *DTD) (*InferResult, error) { return infer.Infer(q, src) }

// InferContext is Infer with cancellation and resource budgeting: attach a
// budget with BudgetContext and exhaustion degrades the result to a
// sound-but-looser view DTD (InferResult.Degraded) instead of failing.
func InferContext(ctx context.Context, q *Query, src *DTD) (*InferResult, error) {
	return infer.InferContext(ctx, q, src)
}

// NaiveInfer is the unrefined baseline of Example 3.1.
func NaiveInfer(q *Query, src *DTD) (*DTD, error) { return infer.NaiveInfer(q, src) }

// Refine is the paper's type refinement refine(r, n) (Definition 4.1):
// the sub-language of r whose words contain the given name.
func Refine(r Expr, name string) Expr { return infer.RefineName(r, name) }

// SimplifyQuery rewrites a query using DTD knowledge: prunes guaranteed
// conditions, drops impossible disjuncts, and classifies the query.
func SimplifyQuery(q *Query, src *DTD) (*Query, *infer.SimplifyReport, error) {
	return infer.SimplifyQuery(q, src)
}

// Eval materializes a view: the elements the pick variable binds to,
// grouped in document order under a root named after the query.
func Eval(q *Query, doc *Document) (*Document, error) { return engine.Eval(q, doc) }

// EvalElements returns the matched elements themselves (no copies).
func EvalElements(q *Query, doc *Document) ([]*Element, error) {
	return engine.EvalElements(q, doc)
}

// EmptyResult is the empty view document for a query — exactly the shape
// Eval returns when nothing matches, so fast paths that skip evaluation
// (unsatisfiable queries, fully pruned views) produce identical output.
func EmptyResult(q *Query) *Document { return engine.EmptyResult(q) }

// Tighter decides Definition 3.2: every document satisfying d1 satisfies
// d2. The witness explains a negative answer.
func Tighter(d1, d2 *DTD) (bool, *TightnessWitness) { return tightness.Tighter(d1, d2) }

// TighterBudget is Tighter under a resource budget. The decision cannot
// soundly degrade, so budget exhaustion returns an error ("could not
// decide within budget") that callers must treat explicitly.
func TighterBudget(d1, d2 *DTD, b *Budget) (bool, *TightnessWitness, error) {
	return tightness.TighterBudget(d1, d2, b)
}

// EquivalentDTDs reports that two DTDs describe the same document set.
func EquivalentDTDs(d1, d2 *DTD) bool { return tightness.Equivalent(d1, d2) }

// WitnessDocument builds a concrete document valid under d1 but not d2 —
// a certificate that d1 is not tighter than d2 — or nil when d1 is
// tighter.
func WitnessDocument(d1, d2 *DTD) (*Document, error) {
	return tightness.WitnessDocument(d1, d2)
}

// EquivalentModels reports language equality of two content models.
func EquivalentModels(a, b Expr) bool { return automata.Equivalent(a, b) }

// AutomataCacheStats snapshots the process-wide compiled-automata cache
// counters (hits, misses, singleflight dedups, evictions, size): every
// content-model compilation and language decision — validation,
// containment, equivalence, inference refinements — is served through it.
func AutomataCacheStats() AutomataCache { return automata.CacheStats() }

// PurgeAutomataCache drops every cached automaton (counters are kept).
// Long-running processes can call it after schema churn; benchmarks use it
// to measure the cold path.
func PurgeAutomataCache() { automata.PurgeCache() }

// CheckSoundness samples Definition 3.1 with `trials` random source
// documents.
func CheckSoundness(q *Query, src, viewDTD *DTD, viewSDTD *SDTD, trials int, seed int64) (*SoundnessReport, error) {
	return tightness.CheckSoundness(q, src, viewDTD, viewSDTD, trials, seed)
}

// MeasureDTD quantifies the structural tightness (Definition 3.7) of a
// plain view DTD by bounded enumeration.
func MeasureDTD(viewDTD *DTD, q *Query, src *DTD, viewBound, srcBound, limit int) (*PrecisionReport, error) {
	return tightness.MeasureDTD(viewDTD, q, src, viewBound, srcBound, limit)
}

// MeasureSDTD quantifies the structural tightness of a specialized view
// DTD.
func MeasureSDTD(viewSDTD *SDTD, q *Query, src *DTD, viewBound, srcBound, limit int) (*PrecisionReport, error) {
	return tightness.MeasureSDTD(viewSDTD, q, src, viewBound, srcBound, limit)
}

// NewMediator creates an empty mediator.
func NewMediator(name string) *Mediator { return mediator.New(name) }

// ComposeQuery rewrites a query over a view into an equivalent query over
// the view's source (the mediator's query/view composition step); see
// mediator.Compose for the composable fragment.
func ComposeQuery(viewDef, q *Query) (*Query, error) { return mediator.Compose(viewDef, q) }

// Composition sentinel errors.
var (
	ErrNotComposable    = mediator.ErrNotComposable
	ErrEmptyComposition = mediator.ErrEmptyComposition
)

// Lookup sentinel errors: matched with errors.Is to distinguish "no such
// view/source" from evaluation failures.
var (
	ErrUnknownView   = mediator.ErrUnknownView
	ErrUnknownSource = mediator.ErrUnknownSource
)

// NewStaticSource wraps an in-memory document + DTD as a mediator source,
// validating the document first.
func NewStaticSource(name string, doc *Document, d *DTD) (Wrapper, error) {
	return mediator.NewStaticSource(name, doc, d)
}

// NewGenerator builds a random-document generator for a DTD.
func NewGenerator(d *DTD, opts GenOptions) (*Generator, error) { return gen.New(d, opts) }

// OutlineDTD renders a DTD as an annotated structure tree — the display a
// DTD-driven query interface shows the user (Section 1's "DTD-based query
// interface").
func OutlineDTD(d *DTD) string { return browse.Outline(d, browse.OutlineOptions{}) }

// NewQueryBuilder starts a schema-guided query builder over the DTD: paths
// are validated step by step, and errors list the legal alternatives.
func NewQueryBuilder(d *DTD) *QueryBuilder { return browse.NewBuilder(d) }

// ExplainQuery renders the query with per-condition classifications and
// the simplifier's decisions — the DTD-aware "explain plan".
func ExplainQuery(q *Query, src *DTD) (string, error) { return browse.Explain(q, src) }

// CardinalityBounds derives [min, max] bounds on the view's size from the
// DTD alone — the selectivity estimate a DTD-aware optimizer gets for
// free (max -1 = unbounded).
func CardinalityBounds(q *Query, src *DTD) (browse.Cardinality, error) {
	return browse.CardinalityBounds(q, src)
}

// ParseSDTD parses the textual form of a specialized DTD (the format
// SDTD.String produces), making s-DTDs an exchange format between stacked
// mediators.
func ParseSDTD(input string) (*SDTD, error) { return sdtd.Parse(input) }

// NewHTTPSource registers a remote mediator view (served by mixserve /
// internal/serve) as a local source: distributed mediator stacking. A nil
// client gets a default-timeout one; transient failures (transport errors,
// 5xx) are retried with exponential backoff — tune with WithRetries /
// WithBackoff.
func NewHTTPSource(client *http.Client, baseURL, view string, opts ...HTTPOption) (Wrapper, error) {
	return mediator.NewHTTPSource(client, baseURL, view, opts...)
}

// WithRetries bounds how many times an HTTP source retries a transient
// failure (transport error or 5xx) before giving up.
func WithRetries(n int) HTTPOption { return mediator.WithRetries(n) }

// WithBackoff sets the initial retry backoff of an HTTP source; it doubles
// on each successive retry.
func WithBackoff(d time.Duration) HTTPOption { return mediator.WithBackoff(d) }

// WithRetryBudget makes an HTTP source's retries spend tokens from the
// given budget: when the bucket is dry the fetch fails immediately
// instead of sleeping another backoff against a browned-out remote.
func WithRetryBudget(b *RetryBudget) HTTPOption { return mediator.WithRetryBudget(b) }

// QueryBuilder is re-exported from the browse package.
type QueryBuilder = browse.Builder

// OEMFromXML converts an element tree to the Object Exchange Model.
func OEMFromXML(e *Element) *OEMObject { return oem.FromXML(e) }

// BuildDataGuide constructs the strong dataguide of OEM objects.
func BuildDataGuide(objs ...*OEMObject) (*DataGuide, error) { return oem.Build(objs...) }

// ParsePath parses an OEM path query ("department.professor|gradStudent",
// "%" wildcard, trailing "*" recursive) — the TSIMMIS-style access pattern
// used by the dataguide comparison.
func ParsePath(s string) (*PathQuery, error) { return oem.ParsePath(s) }

// PathQuery is re-exported from the oem package.
type PathQuery = oem.PathQuery

// RunExperiments executes the paper-reproduction experiment harness
// (EXPERIMENTS.md); empty ids runs everything.
func RunExperiments(w io.Writer, quick bool, ids ...string) error {
	cfg := bench.DefaultConfig()
	cfg.Quick = quick
	return bench.Run(w, cfg, ids...)
}
