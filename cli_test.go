package mix_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildTools compiles the cmd/* binaries once per test run into a shared
// temp dir and returns the path of the requested tool.
var (
	toolsOnce sync.Once
	toolsDir  string
	toolsErr  error
)

func tool(t *testing.T, name string) string {
	t.Helper()
	toolsOnce.Do(func() {
		dir, err := os.MkdirTemp("", "mixtools")
		if err != nil {
			toolsErr = err
			return
		}
		toolsDir = dir
		cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator),
			"./cmd/mixinfer", "./cmd/mixquery", "./cmd/dtdcheck", "./cmd/mixgen", "./cmd/mixbench", "./cmd/mixcompose")
		out, err := cmd.CombinedOutput()
		if err != nil {
			toolsErr = &buildError{out: string(out), err: err}
		}
	})
	if toolsErr != nil {
		t.Skipf("cannot build CLI tools: %v", toolsErr)
	}
	return filepath.Join(toolsDir, name)
}

type buildError struct {
	out string
	err error
}

func (e *buildError) Error() string { return e.err.Error() + "\n" + e.out }

func run(t *testing.T, stdin string, name string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(tool(t, name), args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return stdout.String(), stderr.String(), code
}

func writeFixtures(t *testing.T) (dtdPath, queryPath string) {
	t.Helper()
	dir := t.TempDir()
	dtdPath = filepath.Join(dir, "d1.dtd")
	queryPath = filepath.Join(dir, "q2.xmas")
	if err := os.WriteFile(dtdPath, []byte(d1Bench), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(queryPath, []byte(q2Bench), 0o644); err != nil {
		t.Fatal(err)
	}
	return
}

func TestCLIMixinfer(t *testing.T) {
	dtdPath, queryPath := writeFixtures(t)
	out, _, code := run(t, "", "mixinfer", "-dtd", dtdPath, "-query", queryPath)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	for _, want := range []string{
		"specialized view DTD", "plain view DTD",
		"<!ELEMENT withJournals (professor*, gradStudent*)>",
		"publication^1",
		"classification: satisfiable",
		"non-tightness introduced",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output misses %q:\n%s", want, out)
		}
	}
	// Unsatisfiable views exit 2.
	dir := t.TempDir()
	unsat := filepath.Join(dir, "u.xmas")
	os.WriteFile(unsat, []byte(`v = SELECT X WHERE <department> X:<dean/> </department>`), 0o644)
	_, _, code = run(t, "", "mixinfer", "-dtd", dtdPath, "-query", unsat)
	if code != 2 {
		t.Errorf("unsatisfiable view: exit %d, want 2", code)
	}
}

func TestCLIMixgenDtdcheckMixqueryPipeline(t *testing.T) {
	dtdPath, queryPath := writeFixtures(t)
	// Generate a document with inline DTD.
	doc, genErr, code := run(t, "", "mixgen", "-dtd", dtdPath, "-seed", "5", "-ids")
	if code != 0 {
		t.Fatalf("mixgen exit %d: %s", code, genErr)
	}
	// Validate it from stdin.
	out, _, code := run(t, doc, "dtdcheck")
	if code != 0 || !strings.Contains(out, "valid") {
		t.Fatalf("dtdcheck: exit %d, out %q", code, out)
	}
	// Query it with validation.
	out, stderr, code := run(t, doc, "mixquery", "-query", queryPath, "-validate", "-indent", "-1")
	if code != 0 {
		t.Fatalf("mixquery exit %d: %s", code, stderr)
	}
	if !strings.Contains(out, "<withJournals>") {
		t.Errorf("result: %q", out)
	}
	if !strings.Contains(stderr, "satisfies the inferred view DTD") {
		t.Errorf("stderr: %q", stderr)
	}
}

func TestCLIDtdcheckTighter(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.dtd")
	b := filepath.Join(dir, "b.dtd")
	os.WriteFile(a, []byte(`<!DOCTYPE r [ <!ELEMENT r (x, x)> <!ELEMENT x (#PCDATA)> ]>`), 0o644)
	os.WriteFile(b, []byte(`<!DOCTYPE r [ <!ELEMENT r (x+)> <!ELEMENT x (#PCDATA)> ]>`), 0o644)
	out, _, code := run(t, "", "dtdcheck", "-tighter", a, b)
	if code != 0 || !strings.Contains(out, "strictly tighter") {
		t.Errorf("tighter: exit %d, %q", code, out)
	}
	out, _, code = run(t, "", "dtdcheck", "-tighter", b, a)
	if code != 1 || !strings.Contains(out, "witness") {
		t.Errorf("reverse: exit %d, %q", code, out)
	}
}

func TestCLIDtdcheckInvalidDocument(t *testing.T) {
	_, stderr, code := run(t, `<!DOCTYPE r [ <!ELEMENT r (x)> <!ELEMENT x (#PCDATA)> ]><r></r>`, "dtdcheck")
	if code != 1 || !strings.Contains(stderr, "INVALID") {
		t.Errorf("exit %d, stderr %q", code, stderr)
	}
}

func TestCLIMixbenchSubset(t *testing.T) {
	out, _, code := run(t, "", "mixbench", "-quick", "E5")
	if code != 0 || !strings.Contains(out, "PASS") {
		t.Errorf("mixbench: exit %d\n%s", code, out)
	}
	out, _, code = run(t, "", "mixbench", "-list")
	if code != 0 || !strings.Contains(out, "E12") {
		t.Errorf("mixbench -list: exit %d\n%s", code, out)
	}
}

func TestCLIMixqueryNoSimplifyAgrees(t *testing.T) {
	dtdPath, queryPath := writeFixtures(t)
	doc, _, _ := run(t, "", "mixgen", "-dtd", dtdPath, "-seed", "6", "-ids")
	a, _, _ := run(t, doc, "mixquery", "-query", queryPath, "-indent", "-1")
	b, _, _ := run(t, doc, "mixquery", "-query", queryPath, "-indent", "-1", "-no-simplify")
	if a != b {
		t.Errorf("simplified and unsimplified answers differ:\n%s\nvs\n%s", a, b)
	}
}

// TestExamplesRun smoke-tests every example program (they are the public
// API's living documentation and must not rot).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow-ish; skipped in -short")
	}
	examples, err := filepath.Glob("examples/*")
	if err != nil || len(examples) < 5 {
		t.Fatalf("examples: %v %v", examples, err)
	}
	for _, dir := range examples {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			cmd := exec.Command("go", "run", "./"+dir)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s printed nothing", dir)
			}
		})
	}
}

// TestCLIMixcompose covers the composition tool.
func TestCLIMixcompose(t *testing.T) {
	dir := t.TempDir()
	view := filepath.Join(dir, "view.xmas")
	q := filepath.Join(dir, "q.xmas")
	os.WriteFile(view, []byte(`members = SELECT M WHERE <department> M:<professor|gradStudent/> </department>`), 0o644)
	os.WriteFile(q, []byte(`profs = SELECT X WHERE <members> X:<professor><teaches/></professor> </members>`), 0o644)
	out, _, code := run(t, "", "mixcompose", "-view", view, "-query", q)
	if code != 0 || !strings.Contains(out, "SELECT M") || !strings.Contains(out, "<department>") {
		t.Errorf("mixcompose: exit %d\n%s", code, out)
	}
	// Not composable: two root children.
	os.WriteFile(q, []byte(`v = SELECT X WHERE <members> X:<professor/> <gradStudent/> </members>`), 0o644)
	_, _, code = run(t, "", "mixcompose", "-view", view, "-query", q)
	if code != 2 {
		t.Errorf("not-composable exit = %d, want 2", code)
	}
	// Empty composition.
	os.WriteFile(q, []byte(`v = SELECT X WHERE <otherView> X:<professor/> </otherView>`), 0o644)
	_, _, code = run(t, "", "mixcompose", "-view", view, "-query", q)
	if code != 3 {
		t.Errorf("empty-composition exit = %d, want 3", code)
	}
}
