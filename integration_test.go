package mix_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	mix "repro"
	"repro/internal/mediator"
	"repro/internal/serve"
)

// TestWholePaper is the narrative integration test: it walks the paper's
// story end to end on the department schema — inference, soundness,
// tightness, specialization, merging, mediation, simplification,
// composition, stacking, and serving — asserting each section's claim
// along the way. If this test passes, the reproduction stands.
func TestWholePaper(t *testing.T) {
	src := mix.MustDTD(d1Bench)

	// --- Section 4: infer the view DTD for Q2 ---
	q2 := mix.MustQuery(q2Bench)
	res, err := mix.Infer(q2, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != mix.Satisfiable {
		t.Fatalf("Q2 class = %v", res.Class)
	}

	// --- Section 3.1: soundness and tightness ---
	rep, err := mix.CheckSoundness(q2, src, res.DTD, res.SDTD, 120, 2026)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("soundness: %s", rep.First)
	}
	naive, err := mix.NaiveInfer(q2, src)
	if err != nil {
		t.Fatal(err)
	}
	tighter, _ := mix.Tighter(res.DTD, naive)
	looser, _ := mix.Tighter(naive, res.DTD)
	if !tighter || looser {
		t.Fatal("inferred DTD must be strictly tighter than the naive one")
	}
	// A concrete certificate of the gap.
	witness, err := mix.WitnessDocument(naive, res.DTD)
	if err != nil || witness == nil {
		t.Fatalf("witness: %v %v", witness, err)
	}
	if naive.Validate(witness) != nil || res.DTD.Validate(witness) == nil {
		t.Fatal("witness document is not a certificate")
	}

	// --- Section 3.2/3.3: the s-DTD is strictly more expressive ---
	// A professor with two conference papers satisfies the merged plain
	// DTD but not the specialized one.
	badProf, err := mix.ParseElement(`<withJournals><professor>
	  <firstName>f</firstName><lastName>l</lastName>
	  <publication><title>t</title><author>a</author><conference>c</conference></publication>
	  <publication><title>t</title><author>a</author><conference>c</conference></publication>
	  <teaches>x</teaches></professor></withJournals>`)
	if err != nil {
		t.Fatal(err)
	}
	badDoc := &mix.Document{DocType: "withJournals", Root: badProf}
	if res.DTD.Validate(badDoc) != nil {
		t.Fatal("the plain DTD cannot express journal-ness; it must accept")
	}
	if res.SDTD.Satisfies(badDoc) == nil {
		t.Fatal("the s-DTD must reject conference-only members")
	}

	// --- Section 4.3: s-DTDs are an exchange format ---
	back, err := mix.ParseSDTD(res.SDTD.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.Satisfies(badDoc) == nil {
		t.Fatal("round-tripped s-DTD changed semantics")
	}

	// --- Section 1: the mediator, with DTD-driven processing ---
	g, err := mix.NewGenerator(src, mix.GenOptions{Seed: 7, AssignIDs: true, LengthBias: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	m := mix.NewMediator("campus")
	wrapped, err := mix.NewStaticSource("cs", g.Document(), src)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddSource(wrapped); err != nil {
		t.Fatal(err)
	}
	view, err := m.DefineView("cs", mix.MustQuery(
		`members = SELECT X WHERE <department> X:<professor|gradStudent/> </department>`))
	if err != nil {
		t.Fatal(err)
	}
	if view.Class != mix.Valid {
		t.Fatalf("members view class = %v (D1 guarantees members)", view.Class)
	}
	matDoc, err := m.Materialize(context.Background(), "members")
	if err != nil {
		t.Fatal(err)
	}
	if err := view.DTD.Validate(matDoc); err != nil {
		t.Fatal(err)
	}

	// Simplification: a provably-empty query never touches data.
	_, stats, err := m.Query(context.Background(), "members", mix.MustQuery(`v = SELECT X WHERE <members> X:<course/> </members>`))
	if err != nil || !stats.SkippedUnsatisfiable {
		t.Fatalf("unsatisfiable query: %v %+v", err, stats)
	}

	// Composition: same answers as materialization, no view built.
	q := mix.MustQuery(`profs = SELECT X WHERE <members> X:<professor><teaches/></professor> </members>`)
	composed, err := m.QueryComposed(context.Background(), "members", q)
	if err != nil {
		t.Fatal(err)
	}
	materialized, err := m.QueryUnsimplified(context.Background(), "members", q)
	if err != nil {
		t.Fatal(err)
	}
	if !composed.Root.Equal(materialized.Root) {
		t.Fatal("composition must agree with materialization")
	}

	// --- Section 1 again: stacking, over HTTP, three levels ---
	var med *mediator.Mediator = m
	srv := httptest.NewServer(serve.New(med))
	defer srv.Close()
	remote, err := mix.NewHTTPSource(nil, srv.URL, "members")
	if err != nil {
		t.Fatal(err)
	}
	portal := mix.NewMediator("portal")
	if err := portal.AddSource(remote); err != nil {
		t.Fatal(err)
	}
	pv, err := portal.DefineView(remote.Name(), mix.MustQuery(
		`published = SELECT X WHERE <members> X:<professor|gradStudent><publication><journal/></publication></> </members>`))
	if err != nil {
		t.Fatal(err)
	}
	pd, err := portal.Materialize(context.Background(), "published")
	if err != nil {
		t.Fatal(err)
	}
	if err := pv.DTD.Validate(pd); err != nil {
		t.Fatal(err)
	}

	// --- The DTD-driven interface: outline + guided construction ---
	outline := mix.OutlineDTD(pv.DTD)
	if !strings.Contains(outline, "published") {
		t.Fatalf("outline:\n%s", outline)
	}
	built, err := mix.NewQueryBuilder(src).
		Pick("department/professor|gradStudent").
		WhereText("department/name", "CS").
		WhereAtLeast("department/professor|gradStudent/publication/journal", 2).
		Build("withJournals")
	if err != nil {
		t.Fatal(err)
	}
	builtRes, err := mix.Infer(built, src)
	if err != nil {
		t.Fatal(err)
	}
	if !mix.EquivalentDTDs(builtRes.DTD, res.DTD) {
		t.Fatal("builder-made Q2 must infer the same view DTD as the paper's Q2")
	}
}
