package mix_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	mix "repro"
)

// TestFacadeEndToEnd exercises the public API as the README's quickstart
// does: parse, infer, evaluate, validate, measure.
func TestFacadeEndToEnd(t *testing.T) {
	src, err := mix.ParseDTD(d1Bench)
	if err != nil {
		t.Fatal(err)
	}
	q, err := mix.ParseQuery(q2Bench)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mix.Infer(q, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != mix.Satisfiable {
		t.Errorf("class = %v", res.Class)
	}
	if !strings.Contains(res.SDTD.String(), "publication^1") {
		t.Errorf("s-DTD misses the journal specialization:\n%s", res.SDTD)
	}

	g, err := mix.NewGenerator(src, mix.GenOptions{Seed: 42, AssignIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	doc := g.Document()
	view, err := mix.Eval(q, doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.DTD.Validate(view); err != nil {
		t.Errorf("soundness: %v", err)
	}
	if err := res.SDTD.Satisfies(view); err != nil {
		t.Errorf("s-DTD soundness: %v", err)
	}

	rep, err := mix.CheckSoundness(q, src, res.DTD, res.SDTD, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Errorf("violations: %s", rep.First)
	}
}

func TestFacadeDocumentRoundTrip(t *testing.T) {
	src := mix.MustDTD(d1Bench)
	g, _ := mix.NewGenerator(src, mix.GenOptions{Seed: 9, AssignIDs: true})
	doc := g.Document()
	text := mix.MarshalDocument(doc, src, 2)
	doc2, d2, err := mix.ParseDocument(text)
	if err != nil {
		t.Fatal(err)
	}
	if d2 == nil {
		t.Fatal("DTD lost in round trip")
	}
	if !doc2.Root.Equal(doc.Root) {
		t.Error("document changed in round trip")
	}
	if err := d2.Validate(doc2); err != nil {
		t.Error(err)
	}
}

func TestFacadeTightnessAndModels(t *testing.T) {
	a, err := mix.ParseContentModel("a, b")
	if err != nil {
		t.Fatal(err)
	}
	b, err := mix.ParseContentModel("a, b?")
	if err != nil {
		t.Fatal(err)
	}
	if mix.EquivalentModels(a, b) {
		t.Error("a,b and a,b? differ")
	}
	r := mix.Refine(b, "b")
	if !mix.EquivalentModels(r, a) {
		t.Errorf("refine(a,b?, b) = %v, want ≡ a,b", r)
	}
}

func TestFacadeMediator(t *testing.T) {
	m := mix.NewMediator("test")
	src := mix.MustDTD(d1Bench)
	g, _ := mix.NewGenerator(src, mix.GenOptions{Seed: 8, AssignIDs: true})
	w, err := mix.NewStaticSource("dept", g.Document(), src)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddSource(w); err != nil {
		t.Fatal(err)
	}
	v, err := m.DefineView("dept", mix.MustQuery(q3Bench))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := m.Materialize(context.Background(), "publist")
	if err != nil {
		t.Fatal(err)
	}
	if err := v.DTD.Validate(doc); err != nil {
		t.Error(err)
	}
}

func TestFacadeDataGuide(t *testing.T) {
	e, err := mix.ParseElement(`<r><a>x</a><b><a>y</a></b></r>`)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := mix.BuildDataGuide(mix.OEMFromXML(e))
	if err != nil {
		t.Fatal(err)
	}
	if len(dg.Paths()) != 4 { // r, r.a, r.b, r.b.a
		t.Errorf("paths = %v", dg.Paths())
	}
}

func TestFacadeRunExperimentsSubset(t *testing.T) {
	var buf bytes.Buffer
	if err := mix.RunExperiments(&buf, true, "E5"); err != nil {
		t.Fatalf("RunExperiments: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "PASS") {
		t.Error("expected a PASS verdict")
	}
}

func TestFacadeErrRecursivePath(t *testing.T) {
	src := mix.MustDTD(`<!DOCTYPE s [ <!ELEMENT s (p, s*, c)> <!ELEMENT p (#PCDATA)> <!ELEMENT c (#PCDATA)> ]>`)
	_, err := mix.Infer(mix.MustQuery(`v = SELECT X WHERE <s*> X:<p/> </>`), src)
	if err != mix.ErrRecursivePath {
		t.Errorf("err = %v", err)
	}
}

func TestFacadeMeasure(t *testing.T) {
	src := mix.MustDTD(`<!DOCTYPE r [
	  <!ELEMENT r (p*)> <!ELEMENT p (u*)> <!ELEMENT u (j|c)>
	  <!ELEMENT j (#PCDATA)> <!ELEMENT c (#PCDATA)>
	]>`)
	q := mix.MustQuery(`v = SELECT X WHERE <r> X:<p> <u id=A><j/></u> <u id=B><j/></u> </p> </r> AND A != B`)
	res, err := mix.Infer(q, src)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := mix.MeasureDTD(res.DTD, q, src, 8, 10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	sdtd, err := mix.MeasureSDTD(res.SDTD, q, src, 8, 10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !(plain.Precision() < 1 && sdtd.Precision() == 1) {
		t.Errorf("precisions: plain %.3f, sdtd %.3f", plain.Precision(), sdtd.Precision())
	}
}

func TestFacadeParseSDTDRoundTrip(t *testing.T) {
	src := mix.MustDTD(d1Bench)
	res, err := mix.Infer(mix.MustQuery(q2Bench), src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := mix.ParseSDTD(res.SDTD.String())
	if err != nil {
		t.Fatalf("ParseSDTD: %v", err)
	}
	if back.String() != res.SDTD.String() {
		t.Errorf("s-DTD round trip changed rendering")
	}
}

func TestFacadeExplainQuery(t *testing.T) {
	src := mix.MustDTD(d1Bench)
	out, err := mix.ExplainQuery(mix.MustQuery(q2Bench), src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "satisfiable") || !strings.Contains(out, "rewritten query") {
		t.Errorf("explain:\n%s", out)
	}
}

func TestFacadePathQueries(t *testing.T) {
	e, err := mix.ParseElement(`<r><a><b>1</b></a><a><b>2</b></a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	obj := mix.OEMFromXML(e)
	q, err := mix.ParsePath("r.a.b")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Eval(obj); len(got) != 2 {
		t.Errorf("path eval = %d", len(got))
	}
	dg, err := mix.BuildDataGuide(obj)
	if err != nil {
		t.Fatal(err)
	}
	dead, _ := mix.ParsePath("r.z")
	if dg.Satisfiable(dead) {
		t.Error("dead path must be guide-unsatisfiable")
	}
}

func TestFacadeSelectors(t *testing.T) {
	e, err := mix.ParseElement(`<v><m><t>x</t></m></v>`)
	if err != nil {
		t.Fatal(err)
	}
	if e.TextOf("m/t") != "x" || len(e.Descendants("t")) != 1 {
		t.Error("selector facade broken")
	}
}

func TestFacadeValidateIDsViaFull(t *testing.T) {
	d := mix.MustDTD(`<!DOCTYPE r [ <!ELEMENT r (x, x)> <!ELEMENT x (#PCDATA)> ]>`)
	doc, _, err := mix.ParseDocument(`<r id="a"><x id="b">1</x><x id="b">2</x></r>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ValidateFull(doc, false); err == nil || !strings.Contains(err.Error(), "duplicate ID") {
		t.Errorf("ValidateFull = %v", err)
	}
}
